package overlay

import (
	"math/rand"
	"testing"

	"groupcast/internal/metrics"
	"groupcast/internal/peer"
)

func buildTestOverlay(t *testing.T, n int, seed int64) (*Graph, *Builder) {
	t.Helper()
	uni := syntheticUniverse(n, seed)
	g, b, err := BuildGroupCast(uni, DefaultBootstrapConfig(), rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, b
}

func TestHostCacheBootstrapLists(t *testing.T) {
	uni := syntheticUniverse(50, 1)
	hc := NewHostCache(uni)
	rng := rand.New(rand.NewSource(2))
	if got := hc.Bootstrap(0, 3, rng); got != nil {
		t.Fatalf("empty cache returned %v", got)
	}
	for i := 1; i < 50; i++ {
		hc.Register(i)
	}
	if hc.Len() != 49 {
		t.Fatalf("cache len = %d", hc.Len())
	}
	got := hc.Bootstrap(0, 4, rng)
	if len(got) != 8 {
		t.Fatalf("|B| = %d, want 8", len(got))
	}
	seen := make(map[int]bool)
	for _, j := range got {
		if j == 0 {
			t.Fatal("cache returned the joiner itself")
		}
		if seen[j] {
			t.Fatalf("duplicate %d in bootstrap list", j)
		}
		seen[j] = true
	}
	// The first half must be the closest peers: no cached peer may be closer
	// than the farthest BD member.
	maxBD := 0.0
	for _, j := range got[:4] {
		if d := uni.Dist(0, j); d > maxBD {
			maxBD = d
		}
	}
	closer := 0
	for j := 1; j < 50; j++ {
		if uni.Dist(0, j) < maxBD {
			closer++
		}
	}
	if closer > 4 {
		t.Fatalf("BD list not the closest peers: %d cached peers closer than BD max", closer)
	}
	// Unregister removes.
	hc.Unregister(10)
	if hc.Len() != 48 {
		t.Fatal("unregister failed")
	}
}

func TestHostCacheSmallPopulation(t *testing.T) {
	uni := syntheticUniverse(3, 3)
	hc := NewHostCache(uni)
	hc.Register(1)
	got := hc.Bootstrap(0, 4, rand.New(rand.NewSource(1)))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
	// halfSize < 1 clamps.
	got = hc.Bootstrap(0, 0, rand.New(rand.NewSource(1)))
	if len(got) == 0 {
		t.Fatal("clamped half size returned nothing")
	}
}

func TestBootstrapConfigValidation(t *testing.T) {
	cases := []func(*BootstrapConfig){
		func(c *BootstrapConfig) { c.HalfSizeMin = 0 },
		func(c *BootstrapConfig) { c.HalfSizeMax = c.HalfSizeMin - 1 },
		func(c *BootstrapConfig) { c.QuotaBase = 0 },
		func(c *BootstrapConfig) { c.QuotaSlope = -1 },
		func(c *BootstrapConfig) { c.FallbackAccept = 1.5 },
	}
	for i, mutate := range cases {
		cfg := DefaultBootstrapConfig()
		mutate(&cfg)
		if _, err := NewBuilder(syntheticUniverse(5, 1), cfg, rand.New(rand.NewSource(1)), nil); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestQuotaGrowsWithCapacity(t *testing.T) {
	cfg := DefaultBootstrapConfig()
	prev := 0
	for _, c := range []peer.Capacity{1, 10, 100, 1000, 10000} {
		q := cfg.Quota(c)
		if q <= 0 {
			t.Fatalf("quota(%v) = %d", c, q)
		}
		if q < prev {
			t.Fatalf("quota not monotone at %v", c)
		}
		prev = q
	}
	if cfg.Quota(1) != 4 || cfg.Quota(10000) != 12 {
		t.Fatalf("quota endpoints: %d, %d", cfg.Quota(1), cfg.Quota(10000))
	}
}

func TestBuildGroupCastConnectivityAndDegrees(t *testing.T) {
	g, b := buildTestOverlay(t, 400, 7)
	if g.NumAlive() != 400 {
		t.Fatalf("alive = %d", g.NumAlive())
	}
	if !IsConnected(g) {
		t.Fatal("overlay disconnected")
	}
	// Every joined peer except possibly the first must have neighbours.
	zero := 0
	for _, i := range g.AlivePeers() {
		if g.Degree(i) == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("%d isolated peers", zero)
	}
	// Protocol counters must have moved.
	ctr := b.Counters()
	if ctr.Get(CtrProbe) == 0 || ctr.Get(CtrBackRequest) == 0 {
		t.Fatalf("counters silent: %v", ctr.Snapshot())
	}
	if ctr.Get(CtrBackAccepted) > ctr.Get(CtrBackRequest) {
		t.Fatal("more back links accepted than requested")
	}
}

func TestJoinErrors(t *testing.T) {
	uni := syntheticUniverse(5, 8)
	b, err := NewBuilder(uni, DefaultBootstrapConfig(), rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(99); err == nil {
		t.Fatal("out-of-range join accepted")
	}
	if err := b.Join(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(0); err == nil {
		t.Fatal("double join accepted")
	}
}

func TestResourceLevelEstimates(t *testing.T) {
	_, b := buildTestOverlay(t, 300, 9)
	uni := b.Graph().Universe()
	// Peers with capacity 10000 must estimate a high r; capacity-1 peers a
	// low r (after enough joins the samples are representative).
	for i := 100; i < 300; i++ {
		r := b.ResourceLevel(i)
		if r < 0.01 || r > 0.99 {
			t.Fatalf("r[%d] = %v out of clamp range", i, r)
		}
		switch uni.Caps[i] {
		case 1:
			if r > 0.4 {
				t.Fatalf("weak peer %d has r = %v", i, r)
			}
		case 10000:
			if r < 0.6 {
				t.Fatalf("strongest peer %d has r = %v", i, r)
			}
		}
	}
}

func TestPowerfulPeersGetHigherDegrees(t *testing.T) {
	g, _ := buildTestOverlay(t, 800, 10)
	uni := g.Universe()
	var weakSum, strongSum float64
	var weakN, strongN int
	for _, i := range g.AlivePeers() {
		switch {
		case uni.Caps[i] == 1:
			weakSum += float64(g.Degree(i))
			weakN++
		case uni.Caps[i] >= 1000:
			strongSum += float64(g.Degree(i))
			strongN++
		}
	}
	if weakN == 0 || strongN == 0 {
		t.Skip("degenerate capacity draw")
	}
	weak := weakSum / float64(weakN)
	strong := strongSum / float64(strongN)
	if strong < 1.5*weak {
		t.Fatalf("powerful peers mean degree %v not well above weak %v", strong, weak)
	}
}

func TestLeaveAndFail(t *testing.T) {
	g, b := buildTestOverlay(t, 50, 11)
	deg := g.Degree(10)
	if deg == 0 {
		t.Skip("peer 10 isolated")
	}
	b.Leave(10)
	if g.Alive(10) {
		t.Fatal("peer alive after leave")
	}
	b.Fail(11)
	if g.Alive(11) {
		t.Fatal("peer alive after fail")
	}
	// Host cache must no longer return departed peers.
	got := b.HostCache().Bootstrap(0, 30, rand.New(rand.NewSource(1)))
	for _, j := range got {
		if j == 10 || j == 11 {
			t.Fatal("cache returned a departed peer")
		}
	}
}

func TestCountersInjected(t *testing.T) {
	ctr := metrics.NewCounters()
	uni := syntheticUniverse(30, 12)
	_, _, err := BuildGroupCast(uni, DefaultBootstrapConfig(), rand.New(rand.NewSource(1)), ctr)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Get(CtrProbe) == 0 {
		t.Fatal("injected counters unused")
	}
}
