// Package netsim models the underlying IP network of the GroupCast
// experiments: a GT-ITM-style transit-stub router topology with weighted
// (latency) links, shortest-path unicast routing, peer attachment to stub
// routers, and IP multicast trees obtained by merging unicast routes — the
// same substrate the paper builds with the GT-ITM package [34].
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// RouterID identifies a router in the topology.
type RouterID int32

// edge is one directed adjacency entry (links are symmetric: both directions
// are always present with equal latency).
type edge struct {
	to  RouterID
	lat float64 // milliseconds
}

// LatencyRange is a uniform latency range [Lo, Hi] in milliseconds.
type LatencyRange struct {
	Lo float64
	Hi float64
}

func (r LatencyRange) sample(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return quantize(r.Lo)
	}
	return quantize(r.Lo + rng.Float64()*(r.Hi-r.Lo))
}

// quantize rounds a latency to a multiple of 1/128 ms. Dyadic latencies make
// path-latency sums exact in floating point, so distances are exactly
// symmetric and the triangle inequality holds without epsilon tolerances.
func quantize(ms float64) float64 {
	return math.Round(ms*128) / 128
}

// Config parameterizes transit-stub topology generation.
type Config struct {
	// TransitDomains is the number of transit (backbone) domains.
	TransitDomains int
	// TransitNodesPerDomain is the router count inside each transit domain.
	TransitNodesPerDomain int
	// StubDomainsPerTransitNode is how many stub domains hang off each
	// transit router.
	StubDomainsPerTransitNode int
	// StubNodesPerDomain is the router count inside each stub domain.
	StubNodesPerDomain int

	// InterTransitLat is the latency of links between transit domains.
	InterTransitLat LatencyRange
	// IntraTransitLat is the latency of links inside a transit domain.
	IntraTransitLat LatencyRange
	// TransitStubLat is the latency of transit-to-stub attachment links.
	TransitStubLat LatencyRange
	// IntraStubLat is the latency of links inside a stub domain.
	IntraStubLat LatencyRange

	// IntraTransitExtraEdgeProb adds redundant intra-transit edges beyond the
	// connecting spanning tree with this per-pair probability.
	IntraTransitExtraEdgeProb float64
	// IntraStubExtraEdgeProb likewise for stub domains.
	IntraStubExtraEdgeProb float64

	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultConfig mirrors the scale of the paper's GT-ITM topologies: ~600
// routers in 4 transit domains.
func DefaultConfig() Config {
	return Config{
		TransitDomains:            4,
		TransitNodesPerDomain:     8,
		StubDomainsPerTransitNode: 3,
		StubNodesPerDomain:        6,
		InterTransitLat:           LatencyRange{Lo: 30, Hi: 60},
		IntraTransitLat:           LatencyRange{Lo: 10, Hi: 25},
		TransitStubLat:            LatencyRange{Lo: 4, Hi: 10},
		IntraStubLat:              LatencyRange{Lo: 1, Hi: 4},
		IntraTransitExtraEdgeProb: 0.3,
		IntraStubExtraEdgeProb:    0.2,
		Seed:                      1,
	}
}

// Validate reports whether the configuration describes a buildable topology.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return errors.New("netsim: need at least one transit domain")
	case c.TransitNodesPerDomain < 1:
		return errors.New("netsim: need at least one transit node per domain")
	case c.StubDomainsPerTransitNode < 0 || c.StubNodesPerDomain < 0:
		return errors.New("netsim: negative stub sizes")
	case (c.StubDomainsPerTransitNode > 0) != (c.StubNodesPerDomain > 0):
		return errors.New("netsim: stub domain count and size must both be zero or both positive")
	}
	return nil
}

// Network is a generated transit-stub router topology with all-pairs
// shortest-path routing state.
type Network struct {
	cfg         Config
	adj         [][]edge
	stubRouters []RouterID
	transit     []RouterID
	numLinks    int

	// dist[u][v] is the shortest-path latency; nextHop[u][v] the first router
	// after u on that path (or v's value for u==v).
	dist    [][]float32
	nextHop [][]int32
}

// Generate builds a transit-stub topology and precomputes routing tables.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nTransit := cfg.TransitDomains * cfg.TransitNodesPerDomain
	nStub := nTransit * cfg.StubDomainsPerTransitNode * cfg.StubNodesPerDomain
	n := nTransit + nStub
	nw := &Network{
		cfg: cfg,
		adj: make([][]edge, n),
	}

	// Transit routers occupy IDs [0, nTransit).
	domains := make([][]RouterID, cfg.TransitDomains)
	id := RouterID(0)
	for d := range domains {
		domains[d] = make([]RouterID, cfg.TransitNodesPerDomain)
		for i := range domains[d] {
			domains[d][i] = id
			nw.transit = append(nw.transit, id)
			id++
		}
		nw.connectDomain(rng, domains[d], cfg.IntraTransitLat, cfg.IntraTransitExtraEdgeProb)
	}

	// Inter-transit-domain links: a ring over the domains for connectivity,
	// plus a random chord per non-adjacent domain pair with probability 0.5.
	// Each domain-level link is realised between random routers of the two
	// domains.
	for d := 0; d+1 < cfg.TransitDomains; d++ {
		nw.addLink(pick(rng, domains[d]), pick(rng, domains[d+1]), cfg.InterTransitLat.sample(rng))
	}
	if cfg.TransitDomains > 2 {
		nw.addLink(pick(rng, domains[cfg.TransitDomains-1]), pick(rng, domains[0]), cfg.InterTransitLat.sample(rng))
	}
	for d := 0; d < cfg.TransitDomains; d++ {
		for e := d + 2; e < cfg.TransitDomains; e++ {
			if d == 0 && e == cfg.TransitDomains-1 {
				continue // already linked by the ring closure
			}
			if rng.Float64() < 0.5 {
				nw.addLink(pick(rng, domains[d]), pick(rng, domains[e]), cfg.InterTransitLat.sample(rng))
			}
		}
	}

	// Stub domains: IDs [nTransit, n), attached to their transit router.
	for _, tr := range nw.transit {
		for s := 0; s < cfg.StubDomainsPerTransitNode; s++ {
			stub := make([]RouterID, cfg.StubNodesPerDomain)
			for i := range stub {
				stub[i] = id
				nw.stubRouters = append(nw.stubRouters, id)
				id++
			}
			nw.connectDomain(rng, stub, cfg.IntraStubLat, cfg.IntraStubExtraEdgeProb)
			nw.addLink(tr, pick(rng, stub), cfg.TransitStubLat.sample(rng))
		}
	}
	if nStub == 0 {
		// Degenerate topologies still need attachment points.
		nw.stubRouters = append(nw.stubRouters, nw.transit...)
	}

	if err := nw.computeRoutes(); err != nil {
		return nil, err
	}
	return nw, nil
}

func pick(rng *rand.Rand, ids []RouterID) RouterID {
	return ids[rng.Intn(len(ids))]
}

// connectDomain wires the routers of one domain: a random spanning tree for
// connectivity plus extra edges with probability extraProb per pair.
func (nw *Network) connectDomain(rng *rand.Rand, ids []RouterID, lat LatencyRange, extraProb float64) {
	if len(ids) <= 1 {
		return
	}
	perm := rng.Perm(len(ids))
	for i := 1; i < len(perm); i++ {
		// Attach each node to a random earlier node in the permutation: a
		// uniform random recursive tree.
		parent := perm[rng.Intn(i)]
		nw.addLink(ids[perm[i]], ids[parent], lat.sample(rng))
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if rng.Float64() < extraProb && !nw.hasLink(ids[i], ids[j]) {
				nw.addLink(ids[i], ids[j], lat.sample(rng))
			}
		}
	}
}

func (nw *Network) addLink(a, b RouterID, lat float64) {
	if a == b || nw.hasLink(a, b) {
		return
	}
	nw.adj[a] = append(nw.adj[a], edge{to: b, lat: lat})
	nw.adj[b] = append(nw.adj[b], edge{to: a, lat: lat})
	nw.numLinks++
}

func (nw *Network) hasLink(a, b RouterID) bool {
	for _, e := range nw.adj[a] {
		if e.to == b {
			return true
		}
	}
	return false
}

// NumRouters returns the router count.
func (nw *Network) NumRouters() int { return len(nw.adj) }

// NumLinks returns the undirected link count.
func (nw *Network) NumLinks() int { return nw.numLinks }

// StubRouters returns the routers to which peers may attach.
func (nw *Network) StubRouters() []RouterID {
	out := make([]RouterID, len(nw.stubRouters))
	copy(out, nw.stubRouters)
	return out
}

// TransitRouters returns the backbone routers.
func (nw *Network) TransitRouters() []RouterID {
	out := make([]RouterID, len(nw.transit))
	copy(out, nw.transit)
	return out
}

// String summarizes the topology.
func (nw *Network) String() string {
	return fmt.Sprintf("transit-stub network: %d routers (%d transit, %d stub), %d links",
		nw.NumRouters(), len(nw.transit), len(nw.stubRouters), nw.numLinks)
}
