package netsim

// MulticastTree is an IP multicast distribution tree obtained by merging the
// unicast shortest paths from a source peer to each subscriber — the paper's
// simulation of IP multicast ("IP multicast systems are simulated by merging
// the unicast routes into shortest path trees").
type MulticastTree struct {
	Source      PeerID
	Subscribers []PeerID
	// Links is the set of physical links of the merged tree (router-router
	// links plus access links), each counted once.
	Links map[Link]struct{}
	// Delays maps each subscriber to its unicast latency from the source.
	Delays map[PeerID]float64
}

// BuildMulticastTree merges the unicast routes from source to every
// subscriber. Subscribers equal to the source are skipped.
func (a *Attachment) BuildMulticastTree(source PeerID, subscribers []PeerID) *MulticastTree {
	t := &MulticastTree{
		Source: source,
		Links:  make(map[Link]struct{}),
		Delays: make(map[PeerID]float64, len(subscribers)),
	}
	for _, s := range subscribers {
		if s == source {
			continue
		}
		t.Subscribers = append(t.Subscribers, s)
		t.Delays[s] = a.Distance(source, s)
		for _, l := range a.PathLinks(source, s) {
			t.Links[l] = struct{}{}
		}
	}
	return t
}

// NumMessages returns how many IP messages one multicast payload generates:
// one per distinct tree link.
func (t *MulticastTree) NumMessages() int { return len(t.Links) }

// MeanDelay returns the average source→subscriber latency of the tree, or 0
// when there are no subscribers.
func (t *MulticastTree) MeanDelay() float64 {
	if len(t.Subscribers) == 0 {
		return 0
	}
	var sum float64
	for _, d := range t.Delays {
		sum += d
	}
	return sum / float64(len(t.Subscribers))
}
