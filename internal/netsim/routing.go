package netsim

import (
	"container/heap"
	"errors"
	"math"
)

// ErrDisconnected is returned when no route exists between two routers.
var ErrDisconnected = errors.New("netsim: routers are disconnected")

type dijkstraItem struct {
	router RouterID
	dist   float64
	idx    int
}

type dijkstraHeap []*dijkstraItem

func (h dijkstraHeap) Len() int           { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *dijkstraHeap) Push(x any)        { it := x.(*dijkstraItem); it.idx = len(*h); *h = append(*h, it) }
func (h *dijkstraHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// computeRoutes fills the all-pairs shortest-path tables by running Dijkstra
// from every router. With the default ~600-router topologies this is cheap
// and makes per-peer latency lookups O(1) during experiments.
func (nw *Network) computeRoutes() error {
	n := nw.NumRouters()
	nw.dist = make([][]float32, n)
	nw.nextHop = make([][]int32, n)
	for src := 0; src < n; src++ {
		dist, parent := nw.dijkstra(RouterID(src))
		row := make([]float32, n)
		hops := make([]int32, n)
		for v := 0; v < n; v++ {
			if math.IsInf(dist[v], 1) {
				return ErrDisconnected
			}
			row[v] = float32(dist[v])
			hops[v] = firstHop(parent, RouterID(src), RouterID(v))
		}
		nw.dist[src] = row
		nw.nextHop[src] = hops
	}
	return nil
}

func (nw *Network) dijkstra(src RouterID) (dist []float64, parent []RouterID) {
	n := nw.NumRouters()
	dist = make([]float64, n)
	parent = make([]RouterID, n)
	items := make([]*dijkstraItem, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	h := make(dijkstraHeap, 0, n)
	start := &dijkstraItem{router: src, dist: 0}
	items[src] = start
	heap.Push(&h, start)
	for h.Len() > 0 {
		it := heap.Pop(&h).(*dijkstraItem)
		if it.dist > dist[it.router] {
			continue
		}
		for _, e := range nw.adj[it.router] {
			nd := it.dist + e.lat
			if nd < dist[e.to] {
				dist[e.to] = nd
				parent[e.to] = it.router
				ni := &dijkstraItem{router: e.to, dist: nd}
				items[e.to] = ni
				heap.Push(&h, ni)
			}
		}
	}
	return dist, parent
}

// firstHop walks v's parent chain back to src and returns the first router
// after src on the path src→v.
func firstHop(parent []RouterID, src, v RouterID) int32 {
	if src == v {
		return int32(v)
	}
	cur := v
	for parent[cur] != src {
		cur = parent[cur]
	}
	return int32(cur)
}

// RouterDistance returns the shortest-path latency between two routers in ms.
func (nw *Network) RouterDistance(a, b RouterID) float64 {
	return float64(nw.dist[a][b])
}

// RouterPath returns the router sequence of the shortest path from a to b,
// inclusive of both endpoints.
func (nw *Network) RouterPath(a, b RouterID) []RouterID {
	path := []RouterID{a}
	cur := a
	for cur != b {
		cur = RouterID(nw.nextHop[cur][b])
		path = append(path, cur)
	}
	return path
}

// Link identifies an undirected router link in canonical (low, high) order.
type Link struct {
	A RouterID
	B RouterID
}

// NormLink returns the canonical representation of the link between a and b.
func NormLink(a, b RouterID) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// PathLinks returns the links of the shortest router path from a to b.
func (nw *Network) PathLinks(a, b RouterID) []Link {
	path := nw.RouterPath(a, b)
	links := make([]Link, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		links = append(links, NormLink(path[i-1], path[i]))
	}
	return links
}
