package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGenerate(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return nw
}

func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.TransitDomains = 2
	cfg.TransitNodesPerDomain = 3
	cfg.StubDomainsPerTransitNode = 2
	cfg.StubNodesPerDomain = 3
	cfg.Seed = seed
	return cfg
}

func TestGenerateDefault(t *testing.T) {
	nw := mustGenerate(t, DefaultConfig())
	wantTransit := 4 * 8
	wantStub := wantTransit * 3 * 6
	if nw.NumRouters() != wantTransit+wantStub {
		t.Fatalf("routers = %d, want %d", nw.NumRouters(), wantTransit+wantStub)
	}
	if len(nw.TransitRouters()) != wantTransit {
		t.Fatalf("transit = %d, want %d", len(nw.TransitRouters()), wantTransit)
	}
	if len(nw.StubRouters()) != wantStub {
		t.Fatalf("stub = %d, want %d", len(nw.StubRouters()), wantStub)
	}
	if nw.NumLinks() < nw.NumRouters()-1 {
		t.Fatalf("too few links for connectivity: %d", nw.NumLinks())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig(42))
	b := mustGenerate(t, smallConfig(42))
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed, different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	for u := 0; u < a.NumRouters(); u++ {
		for v := 0; v < a.NumRouters(); v++ {
			if a.RouterDistance(RouterID(u), RouterID(v)) != b.RouterDistance(RouterID(u), RouterID(v)) {
				t.Fatalf("distance (%d,%d) differs between same-seed networks", u, v)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(*Config) {}, true},
		{"no transit domains", func(c *Config) { c.TransitDomains = 0 }, false},
		{"no transit nodes", func(c *Config) { c.TransitNodesPerDomain = 0 }, false},
		{"negative stubs", func(c *Config) { c.StubNodesPerDomain = -1 }, false},
		{"mismatched stubs", func(c *Config) { c.StubDomainsPerTransitNode = 0 }, false},
		{"no stubs at all", func(c *Config) {
			c.StubDomainsPerTransitNode = 0
			c.StubNodesPerDomain = 0
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != c.wantOK {
				t.Fatalf("Validate = %v, wantOK=%v", err, c.wantOK)
			}
		})
	}
}

func TestNoStubTopologyUsesTransitAsAttachment(t *testing.T) {
	cfg := smallConfig(7)
	cfg.StubDomainsPerTransitNode = 0
	cfg.StubNodesPerDomain = 0
	nw := mustGenerate(t, cfg)
	if len(nw.StubRouters()) != nw.NumRouters() {
		t.Fatalf("stub attachment points = %d, want all %d routers",
			len(nw.StubRouters()), nw.NumRouters())
	}
}

func TestDistancesSymmetricAndTriangle(t *testing.T) {
	nw := mustGenerate(t, smallConfig(3))
	n := nw.NumRouters()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		u := RouterID(rng.Intn(n))
		v := RouterID(rng.Intn(n))
		w := RouterID(rng.Intn(n))
		duv := nw.RouterDistance(u, v)
		dvu := nw.RouterDistance(v, u)
		if duv != dvu {
			t.Fatalf("asymmetric distance (%d,%d): %v vs %v", u, v, duv, dvu)
		}
		if nw.RouterDistance(u, w) > duv+nw.RouterDistance(v, w)+1e-6 {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
		}
		if u == v && duv != 0 {
			t.Fatalf("self distance nonzero: %v", duv)
		}
	}
}

func TestRouterPathConsistency(t *testing.T) {
	nw := mustGenerate(t, smallConfig(5))
	n := nw.NumRouters()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		u := RouterID(rng.Intn(n))
		v := RouterID(rng.Intn(n))
		path := nw.RouterPath(u, v)
		if path[0] != u || path[len(path)-1] != v {
			t.Fatalf("path endpoints wrong: %v for (%d,%d)", path, u, v)
		}
		// The path's latency must equal the distance table entry.
		var lat float64
		for i := 1; i < len(path); i++ {
			found := false
			for _, e := range nw.adj[path[i-1]] {
				if e.to == path[i] {
					lat += e.lat
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path uses non-existent link %d-%d", path[i-1], path[i])
			}
		}
		if diff := lat - nw.RouterDistance(u, v); diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("path latency %v != table %v", lat, nw.RouterDistance(u, v))
		}
	}
}

func TestPathLinksCanonical(t *testing.T) {
	nw := mustGenerate(t, smallConfig(5))
	links := nw.PathLinks(0, RouterID(nw.NumRouters()-1))
	if len(links) == 0 {
		t.Fatal("no links on cross-network path")
	}
	for _, l := range links {
		if l.A > l.B {
			t.Fatalf("non-canonical link %v", l)
		}
	}
}

func TestNormLink(t *testing.T) {
	if NormLink(5, 2) != (Link{A: 2, B: 5}) {
		t.Fatal("NormLink did not order")
	}
	if NormLink(2, 5) != NormLink(5, 2) {
		t.Fatal("NormLink not symmetric")
	}
}

func TestGeneratedNetworksConnectedProperty(t *testing.T) {
	// Property: any seeded small topology is connected (Generate errors
	// otherwise) and all distances are finite and non-negative.
	f := func(seed int64) bool {
		nw, err := Generate(smallConfig(seed))
		if err != nil {
			return false
		}
		for u := 0; u < nw.NumRouters(); u++ {
			for v := 0; v < nw.NumRouters(); v++ {
				d := nw.RouterDistance(RouterID(u), RouterID(v))
				if d < 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	nw := mustGenerate(t, smallConfig(1))
	if s := nw.String(); s == "" {
		t.Fatal("empty String()")
	}
}
