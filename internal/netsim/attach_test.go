package netsim

import (
	"math/rand"
	"testing"
)

func testAttachment(t *testing.T, n int, seed int64) *Attachment {
	t.Helper()
	nw := mustGenerate(t, smallConfig(seed))
	a, err := Attach(nw, n, AccessLatencyRange, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return a
}

func TestAttachBasics(t *testing.T) {
	a := testAttachment(t, 50, 1)
	if a.NumPeers() != 50 {
		t.Fatalf("peers = %d", a.NumPeers())
	}
	stubSet := make(map[RouterID]bool)
	for _, r := range a.Network().StubRouters() {
		stubSet[r] = true
	}
	for p := PeerID(0); p < 50; p++ {
		if !stubSet[a.Router(p)] {
			t.Fatalf("peer %d attached to non-stub router %d", p, a.Router(p))
		}
		al := a.AccessLatency(p)
		if al < AccessLatencyRange.Lo || al > AccessLatencyRange.Hi {
			t.Fatalf("access latency %v out of range", al)
		}
	}
}

func TestAttachErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Attach(nil, 5, AccessLatencyRange, rng); err == nil {
		t.Fatal("nil network accepted")
	}
	nw := mustGenerate(t, smallConfig(1))
	if _, err := Attach(nw, 0, AccessLatencyRange, rng); err == nil {
		t.Fatal("zero peers accepted")
	}
}

func TestPeerDistanceProperties(t *testing.T) {
	a := testAttachment(t, 40, 2)
	for p := PeerID(0); p < 40; p++ {
		if a.Distance(p, p) != 0 {
			t.Fatalf("self distance nonzero for %d", p)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := PeerID(rng.Intn(40))
		q := PeerID(rng.Intn(40))
		if a.Distance(p, q) != a.Distance(q, p) {
			t.Fatalf("asymmetric peer distance (%d,%d)", p, q)
		}
		if p != q && a.Distance(p, q) <= 0 {
			t.Fatalf("non-positive distance between distinct peers (%d,%d)", p, q)
		}
	}
}

func TestPeerPathLinks(t *testing.T) {
	a := testAttachment(t, 20, 4)
	// Find two peers on different routers so the path is non-trivial.
	var p, q PeerID = 0, 0
	for i := PeerID(1); i < 20; i++ {
		if a.Router(i) != a.Router(0) {
			q = i
			break
		}
	}
	if q == p {
		t.Skip("all peers landed on one router")
	}
	links := a.PathLinks(p, q)
	if len(links) < 3 { // access + >=1 router link + access
		t.Fatalf("path too short: %v", links)
	}
	// First and last are access links (negative pseudo-router IDs).
	if links[0].A >= 0 && links[0].B >= 0 {
		t.Fatalf("first link not an access link: %v", links[0])
	}
	last := links[len(links)-1]
	if last.A >= 0 && last.B >= 0 {
		t.Fatalf("last link not an access link: %v", last)
	}
	if got := a.PathLinks(p, p); got != nil {
		t.Fatalf("self path = %v, want nil", got)
	}
}

func TestAccessLinksDistinctPerPeer(t *testing.T) {
	a := testAttachment(t, 20, 5)
	l0 := accessLink(0, a.Router(0))
	l1 := accessLink(1, a.Router(1))
	if l0 == l1 {
		t.Fatal("distinct peers share an access link key")
	}
}

func TestMulticastTree(t *testing.T) {
	a := testAttachment(t, 30, 6)
	subs := []PeerID{1, 2, 3, 4, 5, 0} // includes source, which must be skipped
	tree := a.BuildMulticastTree(0, subs)
	if len(tree.Subscribers) != 5 {
		t.Fatalf("subscribers = %d, want 5 (source skipped)", len(tree.Subscribers))
	}
	if tree.NumMessages() == 0 {
		t.Fatal("empty multicast tree")
	}
	// Merged tree has at most as many links as the sum of unicast paths.
	var sum int
	for _, s := range tree.Subscribers {
		sum += len(a.PathLinks(0, s))
	}
	if tree.NumMessages() > sum {
		t.Fatalf("merged tree has more links (%d) than path union bound (%d)",
			tree.NumMessages(), sum)
	}
	// Delays match unicast distances.
	for _, s := range tree.Subscribers {
		if tree.Delays[s] != a.Distance(0, s) {
			t.Fatalf("delay mismatch for %d", s)
		}
	}
	if tree.MeanDelay() <= 0 {
		t.Fatal("mean delay not positive")
	}
}

func TestMulticastTreeEmpty(t *testing.T) {
	a := testAttachment(t, 5, 7)
	tree := a.BuildMulticastTree(0, nil)
	if tree.NumMessages() != 0 || tree.MeanDelay() != 0 {
		t.Fatalf("empty tree has messages=%d delay=%v", tree.NumMessages(), tree.MeanDelay())
	}
}
