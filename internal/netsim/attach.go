package netsim

import (
	"errors"
	"math/rand"
)

// PeerID indexes an attached end host (peer). Peers are numbered 0..N-1 by
// the Attachment that created them.
type PeerID int32

// Attachment maps peers onto stub routers with individual access-link
// latencies, modelling end hosts hanging off the transit-stub core.
type Attachment struct {
	nw        *Network
	router    []RouterID
	accessLat []float64
}

// AccessLatencyRange is the default last-mile latency for attached peers.
var AccessLatencyRange = LatencyRange{Lo: 1, Hi: 5}

// Attach places n peers on uniformly random stub routers, each with an access
// latency drawn from lat. A nil network or non-positive n is an error.
func Attach(nw *Network, n int, lat LatencyRange, rng *rand.Rand) (*Attachment, error) {
	if nw == nil {
		return nil, errors.New("netsim: nil network")
	}
	if n <= 0 {
		return nil, errors.New("netsim: need at least one peer")
	}
	stubs := nw.stubRouters
	a := &Attachment{
		nw:        nw,
		router:    make([]RouterID, n),
		accessLat: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a.router[i] = stubs[rng.Intn(len(stubs))]
		a.accessLat[i] = lat.sample(rng)
	}
	return a, nil
}

// NumPeers returns how many peers are attached.
func (a *Attachment) NumPeers() int { return len(a.router) }

// Network returns the underlying router topology.
func (a *Attachment) Network() *Network { return a.nw }

// Router returns the stub router peer p attaches to.
func (a *Attachment) Router(p PeerID) RouterID { return a.router[p] }

// AccessLatency returns peer p's last-mile latency in ms.
func (a *Attachment) AccessLatency(p PeerID) float64 { return a.accessLat[p] }

// Distance returns the end-to-end unicast latency between two peers in ms:
// both access links plus the shortest router path. The distance from a peer
// to itself is zero.
func (a *Attachment) Distance(p, q PeerID) float64 {
	if p == q {
		return 0
	}
	return a.accessLat[p] + a.nw.RouterDistance(a.router[p], a.router[q]) + a.accessLat[q]
}

// accessLink encodes peer p's access link with a negative pseudo-router ID so
// it can be tallied alongside router-router links in stress accounting.
func accessLink(p PeerID, r RouterID) Link {
	return Link{A: RouterID(-int32(p) - 1), B: r}
}

// PathLinks returns every physical link a packet from p to q traverses: p's
// access link, the router path links, and q's access link.
func (a *Attachment) PathLinks(p, q PeerID) []Link {
	if p == q {
		return nil
	}
	routerLinks := a.nw.PathLinks(a.router[p], a.router[q])
	links := make([]Link, 0, len(routerLinks)+2)
	links = append(links, accessLink(p, a.router[p]))
	links = append(links, routerLinks...)
	links = append(links, accessLink(q, a.router[q]))
	return links
}
