package viz

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"groupcast/internal/overlay"
	"groupcast/internal/peer"
	"groupcast/internal/protocol"
)

func testOverlay(t *testing.T) (*overlay.Graph, protocol.ResourceLevels) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 60
	caps := peer.MustTable1Sampler().SampleN(n, rng)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	uni := &overlay.Universe{
		Caps: caps,
		Dist: func(i, j int) float64 {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			return math.Sqrt(dx*dx + dy*dy)
		},
	}
	g, b, err := overlay.BuildGroupCast(uni, overlay.DefaultBootstrapConfig(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, b.ResourceLevel
}

func TestOverlayDOT(t *testing.T) {
	g, _ := testOverlay(t)
	var buf bytes.Buffer
	if err := OverlayDOT(&buf, g, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph \"demo\" {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT document:\n%s", out[:min(200, len(out))])
	}
	// One node statement per alive peer.
	if got := strings.Count(out, "fillcolor="); got < g.NumAlive() {
		t.Fatalf("node statements %d < alive %d", got, g.NumAlive())
	}
	// Undirected edges, deduplicated: count must be at most directed/1 and
	// at least directed/2.
	edges := strings.Count(out, " -- ")
	if edges == 0 || edges > g.NumEdges() {
		t.Fatalf("edge statements %d vs %d directed edges", edges, g.NumEdges())
	}
	// Default name.
	buf.Reset()
	if err := OverlayDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph \"overlay\"") {
		t.Fatal("default name missing")
	}
}

func TestTreeDOT(t *testing.T) {
	g, levels := testOverlay(t)
	rng := rand.New(rand.NewSource(2))
	tree, _, _, err := protocol.BuildGroup(g, 0, rng.Perm(60)[:15], levels,
		protocol.DefaultAdvertiseConfig(), protocol.DefaultSubscribeConfig(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TreeDOT(&buf, tree, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph \"tree\"") {
		t.Fatalf("not a digraph:\n%s", out[:min(200, len(out))])
	}
	if !strings.Contains(out, "doublecircle") {
		t.Fatal("rendezvous not highlighted")
	}
	// One edge per tree child.
	if got := strings.Count(out, " -> "); got != tree.Size()-1 {
		t.Fatalf("edges %d, want %d", got, tree.Size()-1)
	}
}

func TestCapacityColorCoversClasses(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range []float64{1, 10, 100, 1000, 10000} {
		seen[capacityColor(c)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("capacity classes collapse to %d colours", len(seen))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
