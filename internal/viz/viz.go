// Package viz renders overlays and spanning trees as Graphviz DOT documents
// so experiment outputs can be inspected visually (dot -Tsvg overlay.dot).
package viz

import (
	"fmt"
	"io"
	"sort"

	"groupcast/internal/overlay"
	"groupcast/internal/protocol"
)

// OverlayDOT writes the overlay graph as an undirected DOT document. Peers
// are shaded by capacity class; edge direction is collapsed (an i→j or j→i
// forwarding link renders as one edge).
func OverlayDOT(w io.Writer, g *overlay.Graph, name string) error {
	if name == "" {
		name = "overlay"
	}
	uni := g.Universe()
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle, style=filled];\n", name); err != nil {
		return err
	}
	alive := g.AlivePeers()
	sort.Ints(alive)
	for _, i := range alive {
		fmt.Fprintf(w, "  n%d [label=\"%d\", fillcolor=%q];\n",
			i, i, capacityColor(float64(uni.Caps[i])))
	}
	seen := make(map[[2]int]struct{})
	for _, i := range alive {
		nbrs := g.Neighbors(i)
		sort.Ints(nbrs)
		for _, j := range nbrs {
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			fmt.Fprintf(w, "  n%d -- n%d;\n", a, b)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// TreeDOT writes a spanning tree as a directed DOT document rooted at the
// rendezvous. Members are filled, forwarders hollow.
func TreeDOT(w io.Writer, t *protocol.Tree, name string) error {
	if name == "" {
		name = "tree"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  n%d [label=\"%d\", shape=doublecircle, style=filled, fillcolor=gold];\n",
		t.Rendezvous, t.Rendezvous)
	nodes := make([]int, 0, len(t.Parent))
	for c := range t.Parent {
		nodes = append(nodes, c)
	}
	sort.Ints(nodes)
	for _, c := range nodes {
		if t.Members[c] {
			fmt.Fprintf(w, "  n%d [label=\"%d\", style=filled, fillcolor=lightblue];\n", c, c)
		} else {
			fmt.Fprintf(w, "  n%d [label=\"%d\"];\n", c, c)
		}
	}
	for _, c := range nodes {
		fmt.Fprintf(w, "  n%d -> n%d;\n", t.Parent[c], c)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// capacityColor maps Table-1 capacity levels onto a shade ramp.
func capacityColor(capacity float64) string {
	switch {
	case capacity >= 10000:
		return "firebrick"
	case capacity >= 1000:
		return "orange"
	case capacity >= 100:
		return "gold"
	case capacity >= 10:
		return "palegreen"
	default:
		return "lightgray"
	}
}
