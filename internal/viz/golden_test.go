package viz

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"groupcast/internal/protocol"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden DOT files")

// TestGoldenDOT locks the DOT renderings down byte for byte: a fixed seed
// must reproduce the committed testdata files exactly, so any change to the
// rendering (or to the deterministic overlay/tree construction it draws) is
// an explicit diff. Regenerate with: go test ./internal/viz -run Golden -update
func TestGoldenDOT(t *testing.T) {
	g, levels := testOverlay(t)
	rng := rand.New(rand.NewSource(2))
	tree, _, _, err := protocol.BuildGroup(g, 0, rng.Perm(60)[:15], levels,
		protocol.DefaultAdvertiseConfig(), protocol.DefaultSubscribeConfig(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		file   string
		render func(*bytes.Buffer) error
	}{
		{"overlay.dot", func(buf *bytes.Buffer) error { return OverlayDOT(buf, g, "golden-overlay") }},
		{"tree.dot", func(buf *bytes.Buffer) error { return TreeDOT(buf, tree, "golden-tree") }},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.render(&buf); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		path := filepath.Join("testdata", tc.file)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: rendering drifted from golden file (run with -update after verifying the diff)\n got %d bytes, want %d bytes",
				tc.file, buf.Len(), len(want))
		}
	}
}
