package transport

import (
	"testing"
	"time"

	"groupcast/internal/wire"
)

func bestEffortPayload(id uint64) wire.Message {
	return wire.Message{Type: wire.TPayload, MsgID: id, Mode: wire.BestEffort}
}

func reliablePayload(id uint64) wire.Message {
	return wire.Message{Type: wire.TPayload, MsgID: id, Mode: wire.Reliable}
}

// drainInbox receives until the inbox goes quiet for the given idle window.
func drainInbox(in *PrioInbox, idle time.Duration) []wire.Message {
	var out []wire.Message
	for {
		select {
		case msg, ok := <-in.Recv():
			if !ok {
				return out
			}
			out = append(out, msg)
		case <-time.After(idle):
			return out
		}
	}
}

// TestPrioInboxDrainOrder: queued messages leave highest class first. The
// pump may already hold one in-flight message when the rest are queued, so
// the first delivery is exempt from the ordering assertion.
func TestPrioInboxDrainOrder(t *testing.T) {
	in := NewPrioInbox(64, false)
	defer in.Close()
	in.Push(bestEffortPayload(1))
	time.Sleep(20 * time.Millisecond) // let the pump take it in flight
	for i := uint64(2); i < 10; i++ {
		in.Push(bestEffortPayload(i))
	}
	for i := uint64(10); i < 15; i++ {
		in.Push(reliablePayload(i))
	}
	for i := uint64(15); i < 20; i++ {
		in.Push(wire.Message{Type: wire.TBeacon, MsgID: i})
	}
	got := drainInbox(in, 200*time.Millisecond)
	if len(got) != 19 {
		t.Fatalf("drained %d messages, want 19", len(got))
	}
	lastClass := wire.ClassControl
	for i, msg := range got[1:] {
		cls := wire.Classify(&msg)
		if cls < lastClass {
			t.Fatalf("message %d (class %v) delivered after class %v", i+1, cls, lastClass)
		}
		lastClass = cls
	}
}

// TestPrioInboxControlDisplacesBestEffort is the transport half of the
// control-plane starvation regression: flood the inbox with best-effort
// payloads at 10x capacity, then deliver the control plane — beacons,
// NACKs, digests, charter-bearing beacons. Every control message must be
// accepted (displacing best-effort), control sheds must stay zero, and the
// flood must account for the loss.
func TestPrioInboxControlDisplacesBestEffort(t *testing.T) {
	const capacity = 16
	in := NewPrioInbox(capacity, false)
	defer in.Close()

	for i := 0; i < 10*capacity; i++ {
		in.Push(bestEffortPayload(uint64(i)))
	}
	control := []wire.Message{
		{Type: wire.TBeacon, GroupID: "g", Epoch: 3},
		{Type: wire.TNack, GroupID: "g", NackSource: "src", NackSeqs: []uint64{4}},
		{Type: wire.TDigest, GroupID: "g", Digest: []wire.DigestEntry{{Source: "s", High: 9}}},
		{Type: wire.TBeacon, GroupID: "g", Epoch: 3,
			Charter: wire.Charter{GroupID: "g", Epoch: 3}},
		{Type: wire.THeartbeat},
		{Type: wire.THandoff, GroupID: "g"},
	}
	for _, msg := range control {
		if !in.Push(msg) {
			t.Fatalf("control message %v rejected with best-effort slots occupied", msg.Type)
		}
	}

	got := drainInbox(in, 200*time.Millisecond)
	var controlGot int
	for i := range got {
		if wire.Classify(&got[i]) == wire.ClassControl {
			controlGot++
		}
	}
	if controlGot != len(control) {
		t.Fatalf("delivered %d control messages, want %d", controlGot, len(control))
	}
	shed := in.ShedByClass()
	if shed[wire.ClassControl] != 0 {
		t.Fatalf("control sheds = %d, want 0", shed[wire.ClassControl])
	}
	if shed[wire.ClassBestEffort] == 0 {
		t.Fatal("best-effort flood shed nothing at 10x capacity")
	}
	acc := in.AcceptedByClass()
	if int(acc[wire.ClassControl]) != len(control) {
		t.Fatalf("control accepted = %d, want %d", acc[wire.ClassControl], len(control))
	}
	// Conservation: every push was either accepted or shed at arrival, and a
	// displaced victim counts in both (accepted on push, shed on eviction) —
	// so the sum is the flood plus one per displacing control message.
	total := acc[wire.ClassBestEffort] + shed[wire.ClassBestEffort]
	if total < 10*capacity || total > 10*capacity+uint64(len(control)) {
		t.Fatalf("best-effort accepted+shed = %d, want in [%d, %d]",
			total, 10*capacity, 10*capacity+len(control))
	}
}

// TestPrioInboxClasslessStarvesControl pins the legacy failure mode the
// prioritized queue exists to fix: under the single-FIFO policy the same
// flood sheds control messages. (This is the "fails on today's single-queue
// behaviour" half of the regression pair.)
func TestPrioInboxClasslessStarvesControl(t *testing.T) {
	const capacity = 16
	in := NewPrioInbox(capacity, true)
	defer in.Close()

	for i := 0; i < 10*capacity; i++ {
		in.Push(bestEffortPayload(uint64(i)))
	}
	for i := 0; i < 8; i++ {
		in.Push(wire.Message{Type: wire.TBeacon, GroupID: "g", Epoch: uint64(i)})
	}
	shed := in.ShedByClass()
	if shed[wire.ClassControl] == 0 {
		t.Fatal("classless inbox accepted all control during a saturating flood; " +
			"the priority queue would be pointless")
	}
}

// TestPrioInboxReliableDisplacesOnlyBestEffort: reliable-data displaces
// best-effort but never control, and is itself shed when only control and
// reliable traffic remain.
func TestPrioInboxReliableDisplacesOnlyBestEffort(t *testing.T) {
	const capacity = 8
	in := NewPrioInbox(capacity, false)
	defer in.Close()
	time.Sleep(10 * time.Millisecond)

	// Fill with best-effort, then push reliable: displacement.
	for i := 0; i < 2*capacity; i++ {
		in.Push(bestEffortPayload(uint64(i)))
	}
	for i := 0; i < capacity; i++ {
		if !in.Push(reliablePayload(uint64(100 + i))) {
			t.Fatalf("reliable payload %d rejected with best-effort queued", i)
		}
	}
	// The inbox now holds (almost) only reliable data; more reliable pushes
	// must shed as reliable, not displace anything.
	accBefore := in.AcceptedByClass()[wire.ClassReliableData]
	in.Push(reliablePayload(999))
	acc := in.AcceptedByClass()
	shed := in.ShedByClass()
	// Either it landed in a freed slot (the pump drained one) or it shed as
	// reliable; what it must never do is displace control or get counted
	// against another class.
	if acc[wire.ClassReliableData] == accBefore && shed[wire.ClassReliableData] == 0 {
		t.Fatal("reliable push vanished without accept or shed accounting")
	}
	if shed[wire.ClassControl] != 0 {
		t.Fatalf("control sheds = %d, want 0", shed[wire.ClassControl])
	}
}

// TestPrioInboxCloseSemantics: Close is idempotent, closes the Recv stream,
// and rejects later pushes without counting them as sheds.
func TestPrioInboxCloseSemantics(t *testing.T) {
	in := NewPrioInbox(8, false)
	in.Close()
	in.Close()
	if _, ok := <-in.Recv(); ok {
		t.Fatal("Recv still open after Close")
	}
	if in.Push(bestEffortPayload(1)) {
		t.Fatal("push accepted after Close")
	}
	if in.Sheds() != 0 {
		t.Fatalf("closed-inbox push counted as shed: %d", in.Sheds())
	}
}

// TestShedAccountingParity asserts every transport accounts inbox sheds
// identically through the shared prioritized queue: a flood at small
// capacity yields accepted+shed == pushed with the same per-class split,
// whether the endpoint is a MemEndpoint, a TCPTransport, or either wrapped
// in the chaos layer (which previously hid the wrapped endpoint's sheds).
func TestShedAccountingParity(t *testing.T) {
	const capacity = 8
	const flood = 64

	type shedPair struct {
		send func(msg wire.Message) error
		dst  interface {
			DropCounter
			QueueReporter
		}
	}
	pairs := map[string]func(t *testing.T) shedPair{
		"mem": func(t *testing.T) shedPair {
			n := NewMemNetwork()
			n.SetInboxPolicy(capacity, false)
			a, b := n.NextEndpoint(), n.NextEndpoint()
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return shedPair{send: func(m wire.Message) error { return a.Send(b.Addr(), m) }, dst: b}
		},
		"mem+chaos": func(t *testing.T) shedPair {
			n := NewMemNetwork()
			n.SetInboxPolicy(capacity, false)
			cn := NewChaosNetwork(7)
			a, b := cn.Wrap(n.NextEndpoint()), cn.Wrap(n.NextEndpoint())
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return shedPair{send: func(m wire.Message) error { return a.Send(b.Addr(), m) }, dst: b}
		},
		"tcp": func(t *testing.T) shedPair {
			cfg := DefaultTCPConfig()
			cfg.InboxCapacity = capacity
			a, err := ListenTCPConfig("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ListenTCPConfig("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return shedPair{send: func(m wire.Message) error { return a.Send(b.Addr(), m) }, dst: b}
		},
		"tcp+chaos": func(t *testing.T) shedPair {
			cfg := DefaultTCPConfig()
			cfg.InboxCapacity = capacity
			at, err := ListenTCPConfig("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			bt, err := ListenTCPConfig("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			cn := NewChaosNetwork(7)
			a, b := cn.Wrap(at), cn.Wrap(bt)
			t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
			return shedPair{send: func(m wire.Message) error { return a.Send(b.Addr(), m) }, dst: b}
		},
	}

	for name, build := range pairs {
		t.Run(name, func(t *testing.T) {
			p := build(t)
			for i := 0; i < flood; i++ {
				if err := p.send(bestEffortPayload(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			// Conservation must hold once everything in flight has landed.
			deadline := time.Now().Add(5 * time.Second)
			for {
				ds := p.dst.DropStats()
				accepted := uint64(flood) - ds.InboxSheds
				if ds.InboxSheds > 0 && accepted <= uint64(capacity)+1 {
					if ds.BestEffortSheds != ds.InboxSheds {
						t.Fatalf("per-class split broken: best-effort=%d total=%d",
							ds.BestEffortSheds, ds.InboxSheds)
					}
					if ds.ControlSheds != 0 || ds.ReliableSheds != 0 {
						t.Fatalf("phantom sheds: control=%d reliable=%d",
							ds.ControlSheds, ds.ReliableSheds)
					}
					return
				}
				if time.Now().After(deadline) {
					t.Fatalf("shed accounting never converged: %+v", ds)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}
