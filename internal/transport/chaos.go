package transport

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"groupcast/internal/wire"
)

// This file is the deterministic fault-injection layer of the live runtime.
// A ChaosNetwork wraps any set of Transport endpoints and applies seeded,
// per-link fault rules (drop, delay, duplicate, reorder), network
// partitions (split-brain and heal), and crash-stops, either directly or
// from a scripted fault schedule. Unlike MemNetwork's single global drop
// rate, every link owns an independent random stream derived purely from
// (seed, from, to), so one link's traffic volume never perturbs another
// link's fault decisions.

// LinkRule is the fault policy of one directed link (or the default policy
// of every link). The zero value injects nothing.
type LinkRule struct {
	// Drop is the probability a message is silently lost.
	Drop float64
	// DropFirst deterministically drops the first N messages on the link
	// (useful for exercising retry paths in tests).
	DropFirst int
	// Delay is added to every delivery; Jitter adds a uniform extra in
	// [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back ReorderDelay
	// (letting later messages overtake it). ReorderDelay defaults to 4×
	// Delay+Jitter, or 20ms when the link is otherwise instant.
	Reorder      float64
	ReorderDelay time.Duration
}

func (r LinkRule) reorderDelay() time.Duration {
	if r.ReorderDelay > 0 {
		return r.ReorderDelay
	}
	if d := 4 * (r.Delay + r.Jitter); d > 0 {
		return d
	}
	return 20 * time.Millisecond
}

// ChaosStats counts the fault layer's interventions across all links.
type ChaosStats struct {
	// RuleDrops counts messages lost to per-link Drop/DropFirst rules.
	RuleDrops uint64
	// PartitionDrops counts messages blocked by an active partition.
	PartitionDrops uint64
	// CrashDrops counts messages to or from a crash-stopped endpoint.
	CrashDrops uint64
	// Duplicates counts extra copies injected.
	Duplicates uint64
	// Reordered counts messages held back by a reorder rule.
	Reordered uint64
	// Slowed counts messages delayed by a slow-peer pipe.
	Slowed uint64
	// Delivered counts messages handed to the wrapped transport.
	Delivered uint64
}

// Drops is the total number of messages the chaos layer lost.
func (s ChaosStats) Drops() uint64 { return s.RuleDrops + s.PartitionDrops + s.CrashDrops }

// FaultEvent is one step of a scripted fault schedule: at offset At from
// PlaySchedule, apply the fault. Build events with PartitionAt, HealAt,
// CrashAt, ReviveAt and LinkRuleAt.
type FaultEvent struct {
	At    time.Duration
	Desc  string
	apply func(n *ChaosNetwork)
}

// PartitionAt isolates the island addresses from every other endpoint at
// the given offset (split-brain: traffic crosses the island boundary in
// neither direction). Multiple concurrent islands are supported; an
// endpoint belongs to at most one island (the most recent wins).
func PartitionAt(at time.Duration, island ...string) FaultEvent {
	cp := append([]string(nil), island...)
	return FaultEvent{
		At:    at,
		Desc:  fmt.Sprintf("partition %v from the rest", cp),
		apply: func(n *ChaosNetwork) { n.Partition(cp...) },
	}
}

// HealAt dissolves every partition at the given offset.
func HealAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Desc: "heal all partitions", apply: func(n *ChaosNetwork) { n.Heal() }}
}

// CrashAt crash-stops the endpoint at the given offset: all of its inbound
// and outbound traffic is dropped from then on.
func CrashAt(at time.Duration, addr string) FaultEvent {
	return FaultEvent{
		At:    at,
		Desc:  fmt.Sprintf("crash-stop %s", addr),
		apply: func(n *ChaosNetwork) { n.Crash(addr) },
	}
}

// ReviveAt undoes a crash-stop at the given offset.
func ReviveAt(at time.Duration, addr string) FaultEvent {
	return FaultEvent{
		At:    at,
		Desc:  fmt.Sprintf("revive %s", addr),
		apply: func(n *ChaosNetwork) { n.Revive(addr) },
	}
}

// LinkRuleAt installs a fault rule at the given offset. Empty from/to mean
// "every link" (the default rule).
func LinkRuleAt(at time.Duration, from, to string, rule LinkRule) FaultEvent {
	desc := fmt.Sprintf("link %s→%s: drop=%.2f delay=%v dup=%.2f reorder=%.2f",
		orAll(from), orAll(to), rule.Drop, rule.Delay, rule.Duplicate, rule.Reorder)
	return FaultEvent{
		At:   at,
		Desc: desc,
		apply: func(n *ChaosNetwork) {
			if from == "" && to == "" {
				n.SetDefaultRule(rule)
			} else {
				n.SetLinkRule(from, to, rule)
			}
		},
	}
}

// SlowPeerAt installs (or, with perMessage == 0, removes) a slow-peer pipe
// in front of the destination at the given offset.
func SlowPeerAt(at time.Duration, addr string, perMessage time.Duration) FaultEvent {
	desc := fmt.Sprintf("slow-peer %s: %v/msg", addr, perMessage)
	if perMessage <= 0 {
		desc = fmt.Sprintf("slow-peer %s: restored", addr)
	}
	return FaultEvent{
		At:    at,
		Desc:  desc,
		apply: func(n *ChaosNetwork) { n.SlowPeer(addr, perMessage) },
	}
}

func orAll(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// ChurnSchedule generates a continuous-churn fault script: a seeded Poisson
// process of crash–revive pairs over the given addresses. Crashes arrive
// with exponential inter-arrival times at ratePerSec across the whole fleet;
// each victim is drawn uniformly from the nodes still up and revives after
// downtime. The schedule is a pure function of its arguments — the same
// seed yields the same byte-identical fault sequence regardless of how many
// workers later replay it — and composes with PlaySchedule like any other
// script. A non-positive rate, empty address list, or non-positive duration
// yields an empty schedule.
func ChurnSchedule(seed int64, addrs []string, ratePerSec float64, downtime, duration time.Duration) []FaultEvent {
	if ratePerSec <= 0 || len(addrs) == 0 || duration <= 0 || downtime < 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, "churn")))
	downUntil := make(map[string]time.Duration)
	var events []FaultEvent
	for at := time.Duration(0); ; {
		// Exponential inter-arrival: -ln(U)/λ, U ∈ (0,1].
		u := rng.Float64()
		if u == 0 {
			u = 1
		}
		at += time.Duration(-math.Log(u) / ratePerSec * float64(time.Second))
		if at >= duration {
			return events
		}
		// Draw among the nodes still up at this offset; when the whole fleet
		// happens to be down, the arrival is skipped (nothing left to kill).
		up := make([]string, 0, len(addrs))
		for _, a := range addrs {
			if downUntil[a] <= at {
				up = append(up, a)
			}
		}
		if len(up) == 0 {
			continue
		}
		victim := up[rng.Intn(len(up))]
		downUntil[victim] = at + downtime
		events = append(events, CrashAt(at, victim), ReviveAt(at+downtime, victim))
	}
}

type linkKey struct{ from, to string }

type linkState struct {
	rng  *rand.Rand
	sent int
}

// ChaosNetwork coordinates fault injection across a set of wrapped
// endpoints. All methods are safe for concurrent use.
type ChaosNetwork struct {
	seed int64

	mu          sync.Mutex
	defaultRule LinkRule
	linkRules   map[linkKey]LinkRule
	links       map[linkKey]*linkState
	island      map[string]int // addr → island ID; absent = mainland (0)
	islandSeq   int
	crashed     map[string]bool
	slowPeers   map[string]*slowPipe // destination addr → serialized pipe
	endpoints   map[string]*ChaosEndpoint

	ruleDrops      atomic.Uint64
	partitionDrops atomic.Uint64
	crashDrops     atomic.Uint64
	duplicates     atomic.Uint64
	reordered      atomic.Uint64
	slowed         atomic.Uint64
	delivered      atomic.Uint64

	timers   []*time.Timer
	timersMu sync.Mutex
}

// NewChaosNetwork returns a fault-free chaos layer; every random decision
// it will ever make derives from seed and the link identity.
func NewChaosNetwork(seed int64) *ChaosNetwork {
	return &ChaosNetwork{
		seed:      seed,
		linkRules: make(map[linkKey]LinkRule),
		links:     make(map[linkKey]*linkState),
		island:    make(map[string]int),
		crashed:   make(map[string]bool),
		slowPeers: make(map[string]*slowPipe),
		endpoints: make(map[string]*ChaosEndpoint),
	}
}

// slowPipe models a destination whose link drains at a fixed per-message
// service time: deliveries to it are serialized, each occupying the pipe for
// perMessage. Messages queue behind each other (nextFree pushes out), which
// is exactly how a peer with a wedged reader looks from the outside — alive,
// reachable, but consuming far slower than producers send.
type slowPipe struct {
	perMessage time.Duration

	mu       sync.Mutex
	nextFree time.Time
}

// occupy reserves the pipe for one message and returns the extra delivery
// delay: how long the message waits for the pipe plus its own service time.
func (p *slowPipe) occupy() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	start := p.nextFree
	if start.Before(now) {
		start = now
	}
	p.nextFree = start.Add(p.perMessage)
	return p.nextFree.Sub(now)
}

// SlowPeer installs a serialized slow pipe in front of the destination:
// every delivery to addr takes perMessage of exclusive pipe time, so a
// burst queues and arrives strung out — the canonical slow-consumer fault
// the circuit breaker and bounded send queues exist for. perMessage <= 0
// removes the pipe.
func (n *ChaosNetwork) SlowPeer(addr string, perMessage time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if perMessage <= 0 {
		delete(n.slowPeers, addr)
		return
	}
	n.slowPeers[addr] = &slowPipe{perMessage: perMessage}
}

// slowDelay returns the extra delay a delivery to addr incurs from a slow
// pipe (0 without one).
func (n *ChaosNetwork) slowDelay(to string) time.Duration {
	n.mu.Lock()
	sp := n.slowPeers[to]
	n.mu.Unlock()
	if sp == nil {
		return 0
	}
	n.slowed.Add(1)
	return sp.occupy()
}

// Wrap attaches an endpoint to the chaos layer. All of the endpoint's
// outbound traffic passes through the fault rules.
func (n *ChaosNetwork) Wrap(inner Transport) *ChaosEndpoint {
	ep := &ChaosEndpoint{net: n, inner: inner, addr: inner.Addr()}
	n.mu.Lock()
	n.endpoints[ep.addr] = ep
	n.mu.Unlock()
	return ep
}

// SetDefaultRule installs the fault policy applied to links without a
// specific rule.
func (n *ChaosNetwork) SetDefaultRule(rule LinkRule) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultRule = rule
}

// SetLinkRule installs a fault policy for one directed link.
func (n *ChaosNetwork) SetLinkRule(from, to string, rule LinkRule) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkRules[linkKey{from, to}] = rule
}

// Partition isolates the island addresses from every other endpoint.
// Messages cross the island boundary in neither direction until Heal.
func (n *ChaosNetwork) Partition(island ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.islandSeq++
	for _, addr := range island {
		n.island[addr] = n.islandSeq
	}
}

// Heal dissolves every partition.
func (n *ChaosNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.island = make(map[string]int)
}

// Crash crash-stops an endpoint: from now on all of its inbound and
// outbound messages are dropped (the wrapped node keeps running, but the
// network behaves as if the host died).
func (n *ChaosNetwork) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
}

// Revive undoes a crash-stop.
func (n *ChaosNetwork) Revive(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, addr)
}

// Crashed reports whether the endpoint is currently crash-stopped.
func (n *ChaosNetwork) Crashed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[addr]
}

// Stats snapshots the chaos layer's counters.
func (n *ChaosNetwork) Stats() ChaosStats {
	return ChaosStats{
		RuleDrops:      n.ruleDrops.Load(),
		PartitionDrops: n.partitionDrops.Load(),
		CrashDrops:     n.crashDrops.Load(),
		Duplicates:     n.duplicates.Load(),
		Reordered:      n.reordered.Load(),
		Slowed:         n.slowed.Load(),
		Delivered:      n.delivered.Load(),
	}
}

// PlaySchedule arms the scripted fault schedule (offsets are measured from
// now) and returns a stop function that cancels the events still pending.
func (n *ChaosNetwork) PlaySchedule(events []FaultEvent) (stop func()) {
	sorted := append([]FaultEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	n.timersMu.Lock()
	defer n.timersMu.Unlock()
	for _, ev := range sorted {
		ev := ev
		n.timers = append(n.timers, time.AfterFunc(ev.At, func() { ev.apply(n) }))
	}
	return func() {
		n.timersMu.Lock()
		defer n.timersMu.Unlock()
		for _, t := range n.timers {
			t.Stop()
		}
		n.timers = nil
	}
}

// DescribeSchedule renders a schedule deterministically, one event per
// line, for experiment reports.
func DescribeSchedule(events []FaultEvent) []string {
	sorted := append([]FaultEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	out := make([]string, len(sorted))
	for i, ev := range sorted {
		out[i] = fmt.Sprintf("t=%-6s %s", ev.At, ev.Desc)
	}
	return out
}

// linkStateLocked returns the link's decision stream, creating it with a
// seed derived purely from (network seed, from, to).
func (n *ChaosNetwork) linkStateLocked(k linkKey) *linkState {
	ls := n.links[k]
	if ls == nil {
		ls = &linkState{rng: rand.New(rand.NewSource(mixSeed(n.seed, k.from, k.to)))}
		n.links[k] = ls
	}
	return ls
}

// mixSeed folds the link identity into the network seed (splitmix64-style,
// mirroring the experiment pipeline's cellSeed).
func mixSeed(seed int64, parts ...string) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		for _, c := range []byte(p) {
			h ^= uint64(c)
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
		}
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// verdict is the fate the chaos layer assigns one message.
type verdict struct {
	drop    bool
	dupe    bool
	delay   time.Duration
	blocked string // "" or the counter the drop belongs to
}

// judge decides a message's fate under the current rules. It consumes the
// link's random stream only for links with probabilistic rules.
func (n *ChaosNetwork) judge(from, to string) verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] || n.crashed[to] {
		return verdict{drop: true, blocked: "crash"}
	}
	if n.island[from] != n.island[to] {
		return verdict{drop: true, blocked: "partition"}
	}
	rule, ok := n.linkRules[linkKey{from, to}]
	if !ok {
		rule = n.defaultRule
	}
	if rule == (LinkRule{}) {
		return verdict{}
	}
	ls := n.linkStateLocked(linkKey{from, to})
	ls.sent++
	if ls.sent <= rule.DropFirst {
		return verdict{drop: true, blocked: "rule"}
	}
	if rule.Drop > 0 && ls.rng.Float64() < rule.Drop {
		return verdict{drop: true, blocked: "rule"}
	}
	v := verdict{delay: rule.Delay}
	if rule.Jitter > 0 {
		v.delay += time.Duration(ls.rng.Int63n(int64(rule.Jitter)))
	}
	if rule.Duplicate > 0 && ls.rng.Float64() < rule.Duplicate {
		v.dupe = true
	}
	if rule.Reorder > 0 && ls.rng.Float64() < rule.Reorder {
		v.delay += rule.reorderDelay()
		n.reordered.Add(1)
	}
	return v
}

// ChaosEndpoint is one endpoint's attachment to a ChaosNetwork; it
// implements Transport by delegating to the wrapped endpoint after the
// fault rules have had their say.
type ChaosEndpoint struct {
	net   *ChaosNetwork
	inner Transport
	addr  string

	closed     atomic.Bool
	chaosDrops atomic.Uint64
	duplicates atomic.Uint64
}

var (
	_ Transport     = (*ChaosEndpoint)(nil)
	_ DropCounter   = (*ChaosEndpoint)(nil)
	_ QueueReporter = (*ChaosEndpoint)(nil)
)

// Addr returns the wrapped endpoint's address.
func (e *ChaosEndpoint) Addr() string { return e.addr }

// Recv returns the wrapped endpoint's inbound stream.
func (e *ChaosEndpoint) Recv() <-chan wire.Message { return e.inner.Recv() }

// QueueDepth samples the wrapped endpoint's inbox occupancy (0 when the
// wrapped transport does not report one).
func (e *ChaosEndpoint) QueueDepth() int {
	if qr, ok := e.inner.(QueueReporter); ok {
		return qr.QueueDepth()
	}
	return 0
}

// QueueCapacity reports the wrapped endpoint's inbox bound (0 when the
// wrapped transport does not report one).
func (e *ChaosEndpoint) QueueCapacity() int {
	if qr, ok := e.inner.(QueueReporter); ok {
		return qr.QueueCapacity()
	}
	return 0
}

// Breakers passes through the wrapped transport's circuit-breaker snapshot
// (nil when it has none) so breaker state stays observable under fault
// injection.
func (e *ChaosEndpoint) Breakers() []BreakerInfo {
	if br, ok := e.inner.(BreakerReporter); ok {
		return br.Breakers()
	}
	return nil
}

// Close closes the wrapped endpoint.
func (e *ChaosEndpoint) Close() error {
	e.closed.Store(true)
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	return e.inner.Close()
}

// DropStats combines the chaos layer's per-endpoint drops with the wrapped
// transport's own counters (including the per-class shed breakdown, so shed
// accounting stays visible through the chaos layer).
func (e *ChaosEndpoint) DropStats() DropStats {
	out := DropStats{
		FabricDrops: e.chaosDrops.Load(),
		Duplicates:  e.duplicates.Load(),
	}
	if dc, ok := e.inner.(DropCounter); ok {
		out.Add(dc.DropStats())
	}
	return out
}

// Send passes the message through the fault rules and on to the wrapped
// transport. Dropped messages report success (they are lost on the wire,
// not rejected locally); delayed deliveries are asynchronous and their
// errors are swallowed, as on a real network.
func (e *ChaosEndpoint) Send(addr string, msg wire.Message) error {
	if e.closed.Load() {
		return ErrClosed
	}
	v := e.net.judge(e.addr, addr)
	if v.drop {
		e.chaosDrops.Add(1)
		switch v.blocked {
		case "crash":
			e.net.crashDrops.Add(1)
			// A crashed peer refuses connections on a real network: fail
			// the send so callers can account for it.
			return fmt.Errorf("%w: %s crashed", ErrUnreachable, addr)
		case "partition":
			e.net.partitionDrops.Add(1)
			return fmt.Errorf("%w: %s partitioned from %s", ErrUnreachable, addr, e.addr)
		default:
			e.net.ruleDrops.Add(1)
		}
		return nil
	}
	// A slow-peer pipe adds queueing delay on top of whatever the link rule
	// decided (a slow consumer is slow regardless of loss or jitter).
	v.delay += e.net.slowDelay(addr)
	copies := 1
	if v.dupe {
		copies = 2
		e.duplicates.Add(1)
		e.net.duplicates.Add(1)
	}
	if v.delay <= 0 {
		var err error
		for i := 0; i < copies; i++ {
			e.net.delivered.Add(1)
			if sendErr := e.inner.Send(addr, msg); sendErr != nil && err == nil {
				err = sendErr
			}
		}
		return err
	}
	for i := 0; i < copies; i++ {
		e.net.delivered.Add(1)
		time.AfterFunc(v.delay, func() { _ = e.inner.Send(addr, msg) })
	}
	return nil
}
