package transport

import (
	"errors"
	"testing"
	"time"

	"groupcast/internal/wire"
)

// The conformance suite checks the Transport contract every implementation
// must honour — MemNetwork endpoints, TCP transports, and either wrapped in
// the chaos layer (fault-free and under non-lossy fault rules: added delay,
// jitter, duplicates, reordering must never lose or corrupt messages).

// transportPair builds two endpoints that can reach each other, returning
// them and a cleanup.
type transportPair func(t *testing.T) (a, b Transport)

func conformancePairs() map[string]transportPair {
	memPair := func(t *testing.T) (Transport, Transport) {
		n := NewMemNetwork()
		return n.NextEndpoint(), n.NextEndpoint()
	}
	tcpPair := func(t *testing.T) (Transport, Transport) {
		a, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		b, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
		return a, b
	}
	// The legacy gob wire version must honour the same contract until it is
	// retired, and a mixed pair (old node talking to upgraded node) must
	// interoperate through the sniffing frame reader.
	tcpGobPair := func(t *testing.T) (Transport, Transport) {
		cfg := DefaultTCPConfig()
		cfg.WireVersion = wire.VersionGob
		a, err := ListenTCPConfig("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ListenTCPConfig("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
		return a, b
	}
	tcpMixedPair := func(t *testing.T) (Transport, Transport) {
		cfg := DefaultTCPConfig()
		cfg.WireVersion = wire.VersionGob
		a, err := ListenTCPConfig("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
		return a, b
	}
	wrap := func(inner transportPair, rule LinkRule) transportPair {
		return func(t *testing.T) (Transport, Transport) {
			a, b := inner(t)
			cn := NewChaosNetwork(3)
			cn.SetDefaultRule(rule)
			return cn.Wrap(a), cn.Wrap(b)
		}
	}
	faulty := LinkRule{
		Delay:     time.Millisecond,
		Jitter:    2 * time.Millisecond,
		Duplicate: 0.3,
		Reorder:   0.2,
	}
	return map[string]transportPair{
		"mem":             memPair,
		"tcp":             tcpPair,
		"tcp-gob":         tcpGobPair,
		"tcp-mixed":       tcpMixedPair,
		"mem+chaos":       wrap(memPair, LinkRule{}),
		"tcp+chaos":       wrap(tcpPair, LinkRule{}),
		"mem+chaos-fault": wrap(memPair, faulty),
		"tcp+chaos-fault": wrap(tcpPair, faulty),
	}
}

func TestTransportConformance(t *testing.T) {
	for name, pair := range conformancePairs() {
		t.Run(name, func(t *testing.T) {
			runTransportConformance(t, pair)
		})
	}
}

func runTransportConformance(t *testing.T, pair transportPair) {
	a, b := pair(t)

	// Addresses: non-empty and distinct.
	if a.Addr() == "" || b.Addr() == "" || a.Addr() == b.Addr() {
		t.Fatalf("bad addresses %q / %q", a.Addr(), b.Addr())
	}

	// Round trip with field fidelity, both directions.
	probe := wire.Message{
		Type:    wire.TProbe,
		From:    wire.PeerInfo{Addr: a.Addr(), Coord: []float64{1, 2}, Capacity: 50},
		GroupID: "conformance",
		Data:    []byte("ping"),
		MsgID:   1,
	}
	if err := a.Send(b.Addr(), probe); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, 2*time.Second)
	if got.Type != probe.Type || got.GroupID != probe.GroupID ||
		string(got.Data) != "ping" || got.From.Capacity != 50 {
		t.Fatalf("corrupted round trip: %+v", got)
	}
	if err := b.Send(a.Addr(), wire.Message{Type: wire.TProbeResp, MsgID: 2}); err != nil {
		t.Fatal(err)
	}
	if back := recvOne(t, a, 2*time.Second); back.Type != wire.TProbeResp {
		t.Fatalf("reverse direction got %+v", back)
	}

	// A large payload (>64KB — past any single-read framing assumption)
	// survives the trip intact.
	big := make([]byte, 100<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: 3, Seq: 9, Data: big}); err != nil {
		t.Fatal(err)
	}
	for {
		bigGot := recvOne(t, b, 5*time.Second)
		if bigGot.MsgID != 3 {
			continue // straggler duplicate from the round-trip phase
		}
		if bigGot.Seq != 9 || len(bigGot.Data) != len(big) {
			t.Fatalf("large payload mangled: seq=%d len=%d", bigGot.Seq, len(bigGot.Data))
		}
		for i, c := range bigGot.Data {
			if c != byte(i*7) {
				t.Fatalf("large payload corrupted at byte %d", i)
			}
		}
		break
	}

	// A burst of distinct messages all arrive (duplicates permitted; loss
	// and reordering of the set are not — non-lossy fault rules only).
	const burst = 100
	for i := 0; i < burst; i++ {
		if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	deadline := time.After(5 * time.Second)
	for len(seen) < burst {
		select {
		case msg := <-b.Recv():
			seen[msg.MsgID] = true
		case <-deadline:
			t.Fatalf("burst delivered %d of %d distinct messages", len(seen), burst)
		}
	}

	// Close: idempotent, and sends after close fail with ErrClosed.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := b.Send(a.Addr(), wire.Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
