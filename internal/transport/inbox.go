package transport

import (
	"sync"
	"sync/atomic"

	"groupcast/internal/wire"
)

// DefaultInboxCapacity is the bounded inbound queue size every transport
// uses unless configured otherwise: deep enough that a promptly-draining
// node never sheds, small enough that a wedged node bounds its memory.
const DefaultInboxCapacity = 1024

// PrioInbox is the class-prioritized bounded inbound queue shared by every
// transport (MemEndpoint, TCPTransport, and anything wrapped in the chaos
// layer inherits it through them). It replaces the old single buffered
// channel, which shed indiscriminately when full — a flash-crowd payload
// storm could starve the beacons and NACKs that keep trees alive.
//
// Messages are bucketed by wire.Classify into control, reliable-data, and
// best-effort queues sharing one capacity. The drain side always serves the
// highest-priority non-empty queue. The admission side never sheds a message
// while a strictly lower-priority message holds a slot: when the inbox is
// full, the oldest message of the lowest-priority non-empty class below the
// arrival's class is displaced instead. A control message is therefore shed
// only when the entire inbox is already control traffic.
//
// Every shed — displacement or arrival drop — is counted against the class
// of the message lost, and every accepted message is counted too, so
// delivery ratio per class is observable end to end (the overload
// experiment's control-plane-survival column reads these counters).
//
// A classless mode reproduces the legacy single-FIFO behaviour (arrival
// order preserved across classes, incoming messages shed when full) while
// still keeping per-class counters — the ablation baseline that shows what
// priority shedding buys.
type PrioInbox struct {
	capacity  int
	classless bool

	mu     sync.Mutex
	queues [wire.NumClasses][]wire.Message
	size   int
	closed bool

	wake chan struct{} // pump doorbell (capacity 1)
	done chan struct{} // closed by Close; unblocks a pump stuck on out
	out  chan wire.Message

	accepted [wire.NumClasses]atomic.Uint64
	shed     [wire.NumClasses]atomic.Uint64
}

// NewPrioInbox returns a running inbox with the given total capacity
// (DefaultInboxCapacity when <= 0). classless selects the legacy
// single-queue shed policy.
func NewPrioInbox(capacity int, classless bool) *PrioInbox {
	if capacity <= 0 {
		capacity = DefaultInboxCapacity
	}
	in := &PrioInbox{
		capacity:  capacity,
		classless: classless,
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		// Unbuffered on purpose: a buffered out channel would be a hidden
		// FIFO segment that priority cannot reach into, letting queued
		// best-effort traffic delay control messages again.
		out: make(chan wire.Message),
	}
	go in.pump()
	return in
}

// Push offers one inbound message, reporting whether it was accepted.
// Rejections (inbox full with nothing lower-priority to displace, or inbox
// closed) are counted by the message's class; closed-inbox pushes are not
// sheds and count nowhere.
func (in *PrioInbox) Push(msg wire.Message) bool {
	cls := wire.Classify(&msg)
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	if in.size < in.capacity {
		in.enqueueLocked(cls, msg)
		in.mu.Unlock()
		in.ring()
		return true
	}
	if !in.classless {
		// Full: displace the oldest message of the lowest-priority non-empty
		// class strictly below the arrival. Control never sheds while any
		// best-effort or reliable-data slot remains occupied.
		for victim := wire.NumClasses - 1; victim > int(cls); victim-- {
			q := in.queues[victim]
			if len(q) == 0 {
				continue
			}
			q[0] = wire.Message{}
			in.queues[victim] = q[1:]
			in.size--
			in.enqueueLocked(cls, msg)
			in.mu.Unlock()
			in.shed[victim].Add(1)
			in.ring()
			return true
		}
	}
	in.mu.Unlock()
	in.shed[cls].Add(1)
	return false
}

// enqueueLocked appends msg to its class queue (the single shared queue in
// classless mode) and ticks the accept counter.
func (in *PrioInbox) enqueueLocked(cls wire.Class, msg wire.Message) {
	idx := int(cls)
	if in.classless {
		idx = 0
	}
	in.queues[idx] = append(in.queues[idx], msg)
	in.size++
	in.accepted[cls].Add(1)
}

// ring wakes the pump without blocking.
func (in *PrioInbox) ring() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// pump moves messages from the class queues to the out channel, always
// serving the highest-priority non-empty class. It owns closing out.
func (in *PrioInbox) pump() {
	for {
		in.mu.Lock()
		var msg wire.Message
		found := false
		for c := 0; c < wire.NumClasses && !found; c++ {
			if q := in.queues[c]; len(q) > 0 {
				msg = q[0]
				q[0] = wire.Message{}
				in.queues[c] = q[1:]
				in.size--
				found = true
			}
		}
		closed := in.closed
		in.mu.Unlock()
		if !found {
			if closed {
				close(in.out)
				return
			}
			select {
			case <-in.wake:
			case <-in.done:
			}
			continue
		}
		select {
		case in.out <- msg:
		case <-in.done:
			// Closing: the receiver may already be gone. Queued messages are
			// dropped, exactly like buffered messages in a closed socket.
			close(in.out)
			return
		}
	}
}

// Recv is the prioritized inbound stream, closed after Close.
func (in *PrioInbox) Recv() <-chan wire.Message { return in.out }

// Depth is the number of queued messages not yet handed to the receiver.
func (in *PrioInbox) Depth() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.size
}

// Capacity is the fixed queue bound.
func (in *PrioInbox) Capacity() int { return in.capacity }

// DepthByClass samples per-class occupancy (all in index 0 in classless
// mode).
func (in *PrioInbox) DepthByClass() [wire.NumClasses]int {
	var out [wire.NumClasses]int
	in.mu.Lock()
	for c := range in.queues {
		out[c] = len(in.queues[c])
	}
	in.mu.Unlock()
	return out
}

// ShedByClass reports cumulative sheds per class of message lost.
func (in *PrioInbox) ShedByClass() [wire.NumClasses]uint64 {
	var out [wire.NumClasses]uint64
	for c := range out {
		out[c] = in.shed[c].Load()
	}
	return out
}

// AcceptedByClass reports cumulative accepted messages per class.
func (in *PrioInbox) AcceptedByClass() [wire.NumClasses]uint64 {
	var out [wire.NumClasses]uint64
	for c := range out {
		out[c] = in.accepted[c].Load()
	}
	return out
}

// Sheds is the total across classes.
func (in *PrioInbox) Sheds() uint64 {
	var total uint64
	for c := range in.shed {
		total += in.shed[c].Load()
	}
	return total
}

// dropStats folds the inbox's shed counters into one DropStats value (the
// other fields stay zero for the caller to fill).
func (in *PrioInbox) dropStats() DropStats {
	shed := in.ShedByClass()
	return DropStats{
		InboxSheds:      shed[wire.ClassControl] + shed[wire.ClassReliableData] + shed[wire.ClassBestEffort],
		ControlSheds:    shed[wire.ClassControl],
		ReliableSheds:   shed[wire.ClassReliableData],
		BestEffortSheds: shed[wire.ClassBestEffort],
	}
}

// Close stops the pump and closes the out stream. Idempotent. Messages
// still queued are discarded.
func (in *PrioInbox) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.mu.Unlock()
	close(in.done)
	in.ring()
}
