package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"groupcast/internal/wire"
)

// MemNetwork is an in-process message fabric: endpoints register by name and
// exchange wire messages with configurable latency and loss. It lets tests
// run hundreds of live nodes in one process deterministically enough while
// exercising real concurrency.
type MemNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*MemEndpoint
	latency   func(from, to string) time.Duration
	dropRate  float64
	rng       *rand.Rand
	seq       int

	inboxCapacity  int
	classlessInbox bool
}

// NewMemNetwork returns an empty fabric with zero latency and no loss.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		endpoints: make(map[string]*MemEndpoint),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// SetInboxPolicy configures the inbound queue of endpoints created after
// the call: capacity (<= 0 means DefaultInboxCapacity) and the shed policy
// (classless reproduces the legacy single-FIFO queue that sheds arrivals
// regardless of class — the overload experiment's ablation baseline).
func (n *MemNetwork) SetInboxPolicy(capacity int, classless bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inboxCapacity = capacity
	n.classlessInbox = classless
}

// SetLatency installs a latency model (nil means instant delivery).
func (n *MemNetwork) SetLatency(f func(from, to string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// SetDropRate makes the fabric drop messages uniformly at the given rate
// (failure injection for tests). Clamped to [0, 1].
func (n *MemNetwork) SetDropRate(rate float64, seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.dropRate = rate
	n.rng = rand.New(rand.NewSource(seed))
}

// Endpoint creates (or returns an error for a duplicate) named endpoint.
func (n *MemNetwork) Endpoint(name string) (*MemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[name]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint %q", name)
	}
	ep := &MemEndpoint{
		net:  n,
		addr: name,
		// A deep prioritized inbox so slow receivers don't wedge the whole
		// fabric; the node layer drains promptly, and under overload control
		// messages displace best-effort traffic instead of being shed.
		inbox: NewPrioInbox(n.inboxCapacity, n.classlessInbox),
	}
	n.endpoints[name] = ep
	return ep, nil
}

// NextEndpoint creates an endpoint with a generated unique name.
func (n *MemNetwork) NextEndpoint() *MemEndpoint {
	n.mu.Lock()
	n.seq++
	name := fmt.Sprintf("mem-%d", n.seq)
	n.mu.Unlock()
	ep, err := n.Endpoint(name)
	if err != nil {
		// Names are fabric-generated and unique; a collision is a bug.
		panic(err)
	}
	return ep
}

// deliver routes one message, applying loss and latency.
func (n *MemNetwork) deliver(from, to string, msg wire.Message) error {
	n.mu.Lock()
	dst, ok := n.endpoints[to]
	drop := n.dropRate > 0 && n.rng.Float64() < n.dropRate
	var delay time.Duration
	if n.latency != nil {
		delay = n.latency(from, to)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if drop {
		if src := n.endpoint(from); src != nil {
			src.fabricDrops.Add(1)
		}
		return nil // silently lost, as on a real network
	}
	if delay <= 0 {
		dst.push(msg)
		return nil
	}
	timer := time.AfterFunc(delay, func() { dst.push(msg) })
	_ = timer
	return nil
}

func (n *MemNetwork) endpoint(name string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[name]
}

// MemEndpoint is one node's attachment to a MemNetwork.
type MemEndpoint struct {
	net   *MemNetwork
	addr  string
	inbox *PrioInbox

	fabricDrops atomic.Uint64

	mu     sync.Mutex
	closed bool
}

var (
	_ Transport     = (*MemEndpoint)(nil)
	_ DropCounter   = (*MemEndpoint)(nil)
	_ QueueReporter = (*MemEndpoint)(nil)
	_ MultiSender   = (*MemEndpoint)(nil)
)

// Addr returns the endpoint's fabric name.
func (e *MemEndpoint) Addr() string { return e.addr }

// Send routes a message through the fabric.
func (e *MemEndpoint) Send(addr string, msg wire.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.deliver(e.addr, addr, msg)
}

// SendMany implements MultiSender. The fabric moves message values, not
// bytes, so there is no encoding to share — this is the plain loop, kept so
// mem-backed tests exercise the same node fan-out path as TCP.
func (e *MemEndpoint) SendMany(addrs []string, msg wire.Message, each func(addr string, err error)) {
	for _, addr := range addrs {
		err := e.Send(addr, msg)
		if each != nil {
			each(addr, err)
		}
	}
}

// Recv returns the inbound stream.
func (e *MemEndpoint) Recv() <-chan wire.Message { return e.inbox.Recv() }

// QueueDepth samples the inbox occupancy.
func (e *MemEndpoint) QueueDepth() int { return e.inbox.Depth() }

// QueueCapacity reports the inbox bound.
func (e *MemEndpoint) QueueCapacity() int { return e.inbox.Capacity() }

// InboxQueue exposes the prioritized inbox for tests and experiments that
// assert on per-class accept/shed accounting.
func (e *MemEndpoint) InboxQueue() *PrioInbox { return e.inbox }

// push enqueues an inbound message; the prioritized inbox sheds (with
// per-class accounting) when full and discards silently when closed.
func (e *MemEndpoint) push(msg wire.Message) {
	e.inbox.Push(msg)
}

// DropStats reports the endpoint's loss counters: messages this endpoint
// sent that the fabric dropped, and inbound messages shed on a full inbox,
// broken down by class.
func (e *MemEndpoint) DropStats() DropStats {
	out := e.inbox.dropStats()
	out.FabricDrops = e.fabricDrops.Load()
	return out
}

// Close detaches the endpoint from the fabric.
func (e *MemEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()

	e.inbox.Close()
	return nil
}
