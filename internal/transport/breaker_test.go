package transport

import (
	"errors"
	"testing"
	"time"

	"groupcast/internal/wire"
)

// TestBreakerLifecycle walks the full closed → open → half-open → open →
// half-open → closed state machine on the unit itself.
func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond, 400*time.Millisecond)
	if !b.allow() {
		t.Fatal("fresh breaker refused a send")
	}
	b.onFailure()
	if b.currentState() != BreakerClosed {
		t.Fatal("one failure below threshold tripped the breaker")
	}
	b.onFailure()
	if b.currentState() != BreakerOpen {
		t.Fatal("threshold failures did not open the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a send inside the backoff")
	}

	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("backoff elapsed but no probe admitted")
	}
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.currentState())
	}
	if b.allow() {
		t.Fatal("second send admitted while probe in flight")
	}
	b.onFailure() // probe failed: reopen, backoff doubled
	snap := b.snapshot("x")
	if snap.State != "open" || snap.Trips != 2 {
		t.Fatalf("after failed probe: %+v, want open with 2 trips", snap)
	}
	if snap.BackoffMs != 100 {
		t.Fatalf("backoff after failed probe = %dms, want doubled to 100ms", snap.BackoffMs)
	}

	time.Sleep(110 * time.Millisecond)
	if !b.allow() {
		t.Fatal("doubled backoff elapsed but no probe admitted")
	}
	b.onSuccess()
	if b.currentState() != BreakerClosed {
		t.Fatal("successful probe did not reclose the breaker")
	}
	if !b.allow() {
		t.Fatal("reclosed breaker refused a send")
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off entirely.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Millisecond, time.Millisecond)
	for i := 0; i < 10; i++ {
		b.onFailure()
		if !b.allow() {
			t.Fatal("disabled breaker refused a send")
		}
	}
	if b.currentState() != BreakerClosed {
		t.Fatal("disabled breaker changed state")
	}
}

// TestBreakerBackoffCapped: the reopen backoff doubles per failed probe but
// never exceeds the max.
func TestBreakerBackoffCapped(t *testing.T) {
	b := newBreaker(1, 100*time.Millisecond, 250*time.Millisecond)
	b.onFailure() // trip: 100ms
	b.mu.Lock()
	b.state = BreakerHalfOpen // skip waiting out backoffs
	b.mu.Unlock()
	b.onFailure() // 200ms
	b.mu.Lock()
	b.state = BreakerHalfOpen
	b.mu.Unlock()
	b.onFailure() // capped at 250ms
	if got := b.snapshot("x").BackoffMs; got != 250 {
		t.Fatalf("backoff = %dms, want capped at 250ms", got)
	}
}

// TestTCPBreakerOpensOnDeadPeerAndRecovers: repeated dial failures open the
// breaker (sends then fail fast with ErrBreakerOpen and count as
// BreakerRejects); once the peer comes back, the half-open probe recloses
// it and traffic flows again.
func TestTCPBreakerOpensOnDeadPeerAndRecovers(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.DialTimeout = 500 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = 150 * time.Millisecond
	a, err := ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A port that just went dead.
	dead, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := dead.Addr()
	dead.Close()

	msg := wire.Message{Type: wire.TBeacon, GroupID: "g"}
	var sawBreakerOpen bool
	for i := 0; i < 20 && !sawBreakerOpen; i++ {
		err := a.Send(target, msg)
		if errors.Is(err, ErrBreakerOpen) {
			sawBreakerOpen = true
			break
		}
		if err == nil {
			t.Fatal("send to dead port reported success")
		}
	}
	if !sawBreakerOpen {
		t.Fatal("breaker never opened against a dead peer")
	}
	if got := a.DropStats().BreakerRejects; got == 0 {
		t.Fatalf("BreakerRejects = %d, want > 0", got)
	}
	brks := a.Breakers()
	if len(brks) != 1 || brks[0].Addr != target {
		t.Fatalf("Breakers() = %+v, want one entry for %s", brks, target)
	}
	if brks[0].State != "open" || brks[0].Trips == 0 {
		t.Fatalf("breaker snapshot = %+v, want open with trips > 0", brks[0])
	}

	// Bring the peer back on the same address (the OS may refuse the rebind;
	// give it a few tries like the reconnect test does).
	var revived *TCPTransport
	for i := 0; i < 50; i++ {
		revived, err = ListenTCPConfig(target, DefaultTCPConfig())
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if revived == nil {
		t.Skipf("could not rebind %s: %v", target, err)
	}
	defer revived.Close()

	// After the backoff the next allowed send is the half-open probe; its
	// success (observed by the writer goroutine) recloses the breaker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never reclosed after peer revival: %+v", a.Breakers())
		}
		_ = a.Send(target, msg)
		if brks := a.Breakers(); len(brks) == 1 && brks[0].State == "closed" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	select {
	case got := <-revived.Recv():
		if got.Type != wire.TBeacon {
			t.Fatalf("revived peer got %v, want beacon", got.Type)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("revived peer received nothing after breaker reclosed")
	}
}
