package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"groupcast/internal/wire"
)

// TCPConfig bounds the TCP transport's blocking operations. A dead or
// wedged peer must never stall Send (and the heartbeat loop behind it)
// indefinitely.
type TCPConfig struct {
	// DialTimeout bounds connection establishment. Zero uses the default.
	DialTimeout time.Duration
	// WriteTimeout bounds each message write (applied as a per-write
	// deadline on the connection). Zero uses the default.
	WriteTimeout time.Duration
}

// DefaultTCPConfig returns the timeouts used by ListenTCP.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{DialTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second}
}

// TCPTransport is a frame-coded TCP implementation of Transport (see
// wire.FrameWriter: length-prefixed gob with a hard size cap, so a hostile
// or corrupted stream fails fast instead of driving huge allocations). Each
// endpoint listens on its address; outbound connections are cached per
// destination and redialled once on write failure. Dials and writes carry
// deadlines so a dead peer fails the Send instead of hanging it.
type TCPTransport struct {
	ln    net.Listener
	cfg   TCPConfig
	inbox chan wire.Message

	inboxSheds  atomic.Uint64
	fabricDrops atomic.Uint64

	mu      sync.Mutex
	conns   map[string]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *wire.FrameWriter
	writeTmo time.Duration
}

var (
	_ Transport     = (*TCPTransport)(nil)
	_ DropCounter   = (*TCPTransport)(nil)
	_ QueueReporter = (*TCPTransport)(nil)
)

// ListenTCP starts an endpoint on addr ("host:port"; ":0" picks a free
// port) with the default timeouts.
func ListenTCP(addr string) (*TCPTransport, error) {
	return ListenTCPConfig(addr, DefaultTCPConfig())
}

// ListenTCPConfig starts an endpoint with explicit timeouts (zero fields
// fall back to the defaults).
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCPTransport, error) {
	def := DefaultTCPConfig()
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = def.DialTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = def.WriteTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCPTransport{
		ln:      ln,
		cfg:     cfg,
		inbox:   make(chan wire.Message, 1024),
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Recv returns the inbound stream.
func (t *TCPTransport) Recv() <-chan wire.Message { return t.inbox }

// QueueDepth samples the inbox occupancy.
func (t *TCPTransport) QueueDepth() int { return len(t.inbox) }

// DropStats reports inbound messages shed on a full inbox and outbound
// messages lost to dial/write failures after the retry.
func (t *TCPTransport) DropStats() DropStats {
	return DropStats{
		InboxSheds:  t.inboxSheds.Load(),
		FabricDrops: t.fabricDrops.Load(),
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := wire.NewFrameReader(conn)
	for {
		var msg wire.Message
		if err := dec.ReadMessage(&msg); err != nil {
			// Any framing or decode error poisons the stream (by far most
			// commonly a clean peer close); drop the connection.
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- msg:
		default:
			// Inbox full: shed load rather than stall the peer, but account
			// for it so soak tests can assert on loss.
			t.inboxSheds.Add(1)
		}
	}
}

// Send writes msg to addr over a cached connection, dialling on demand and
// retrying once with a fresh connection on failure. Dials and writes are
// deadline-bounded by the transport's TCPConfig.
func (t *TCPTransport) Send(addr string, msg wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	c := t.conns[addr]
	t.mu.Unlock()

	if c != nil {
		if err := c.encode(msg); err == nil {
			return nil
		}
		t.dropConn(addr, c)
	}
	c, err := t.dial(addr)
	if err != nil {
		t.fabricDrops.Add(1)
		return err
	}
	if err := c.encode(msg); err != nil {
		t.dropConn(addr, c)
		t.fabricDrops.Add(1)
		return fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	return nil
}

func (t *TCPTransport) dial(addr string) (*tcpConn, error) {
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &tcpConn{conn: conn, enc: wire.NewFrameWriter(conn), writeTmo: t.cfg.WriteTimeout}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if old, dup := t.conns[addr]; dup {
		// A concurrent dial won; keep the existing connection.
		t.mu.Unlock()
		conn.Close()
		return old, nil
	}
	t.conns[addr] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.conn.Close()
}

func (c *tcpConn) encode(msg wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeTmo > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTmo)); err != nil {
			return err
		}
	}
	return c.enc.WriteMessage(&msg)
}

// Close shuts the listener and all cached connections and closes the inbox.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
	return err
}
