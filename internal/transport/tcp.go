package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"groupcast/internal/wire"
)

// TCPConfig bounds the TCP transport's blocking operations and selects its
// wire behaviour. A dead or wedged peer must never stall Send (and the
// heartbeat loop behind it) indefinitely.
type TCPConfig struct {
	// DialTimeout bounds connection establishment. Zero uses the default.
	DialTimeout time.Duration
	// WriteTimeout bounds each message write (applied as a per-write
	// deadline on the connection). Zero uses the default.
	WriteTimeout time.Duration
	// WireVersion selects the frame encoding this endpoint writes:
	// wire.VersionBinary (the default) or wire.VersionGob (legacy, kept for
	// one release of mixed-cluster compatibility). Reads always accept both
	// — the frame reader sniffs each frame.
	WireVersion int
	// CoalesceWindow is how long small control messages (beacons, digests)
	// may wait per link to share one container frame. Zero uses
	// DefaultCoalesceWindow; negative disables coalescing. Only the binary
	// wire version coalesces.
	CoalesceWindow time.Duration
	// CoalesceLimit is the pending-bytes threshold that flushes a link's
	// container frame before the window elapses. Zero uses
	// DefaultCoalesceLimit.
	CoalesceLimit int
}

// DefaultTCPConfig returns the timeouts and wire settings used by ListenTCP.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		DialTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
		WireVersion:  wire.DefaultVersion,
	}
}

// TCPTransport is a frame-coded TCP implementation of Transport speaking the
// dual-version wire codec (see internal/wire: a sniffing FrameReader, so a
// single cluster can mix binary- and gob-speaking nodes during an upgrade,
// with a hard frame size cap either way so a hostile or corrupted stream
// fails fast instead of driving huge allocations). Each endpoint listens on
// its address; outbound connections are cached per destination and
// redialled once on write failure. Dials and writes carry deadlines so a
// dead peer fails the Send instead of hanging it.
//
// On the binary wire version the transport additionally coalesces per-link
// control messages (beacons and digests share one container frame, flushed
// on a short timer or size threshold) and implements MultiSender: a fan-out
// message is encoded once into a pooled buffer and the same bytes are
// written to every link — the zero-copy half of the relay hot path.
type TCPTransport struct {
	ln    net.Listener
	cfg   TCPConfig
	inbox chan wire.Message

	inboxSheds    atomic.Uint64
	fabricDrops   atomic.Uint64
	coalesceMsgs  atomic.Uint64
	coalesceFlush atomic.Uint64

	mu      sync.Mutex
	conns   map[string]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	t        *TCPTransport
	mu       sync.Mutex
	conn     net.Conn
	enc      *wire.FrameWriter
	writeTmo time.Duration
	coal     *coalescer // nil when coalescing is disabled
	broken   bool       // a flush failed; the next Send must redial
}

var (
	_ Transport     = (*TCPTransport)(nil)
	_ DropCounter   = (*TCPTransport)(nil)
	_ QueueReporter = (*TCPTransport)(nil)
	_ MultiSender   = (*TCPTransport)(nil)
)

// ListenTCP starts an endpoint on addr ("host:port"; ":0" picks a free
// port) with the default configuration (binary wire version, coalescing on).
func ListenTCP(addr string) (*TCPTransport, error) {
	return ListenTCPConfig(addr, DefaultTCPConfig())
}

// ListenTCPConfig starts an endpoint with explicit configuration (zero
// fields fall back to the defaults).
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCPTransport, error) {
	def := DefaultTCPConfig()
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = def.DialTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = def.WriteTimeout
	}
	if cfg.WireVersion == 0 {
		cfg.WireVersion = def.WireVersion
	}
	if _, err := wire.NewFrameWriterVersion(nil, cfg.WireVersion); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCPTransport{
		ln:      ln,
		cfg:     cfg,
		inbox:   make(chan wire.Message, 1024),
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Recv returns the inbound stream.
func (t *TCPTransport) Recv() <-chan wire.Message { return t.inbox }

// QueueDepth samples the inbox occupancy.
func (t *TCPTransport) QueueDepth() int { return len(t.inbox) }

// WireVersion reports the frame encoding this endpoint writes.
func (t *TCPTransport) WireVersion() int { return t.cfg.WireVersion }

// DropStats reports inbound messages shed on a full inbox and outbound
// messages lost to dial/write failures after the retry.
func (t *TCPTransport) DropStats() DropStats {
	return DropStats{
		InboxSheds:  t.inboxSheds.Load(),
		FabricDrops: t.fabricDrops.Load(),
	}
}

// CoalesceStats reports how many control messages travelled inside
// container frames and how many container frames carried them.
func (t *TCPTransport) CoalesceStats() CoalesceStats {
	return CoalesceStats{
		Msgs:   t.coalesceMsgs.Load(),
		Frames: t.coalesceFlush.Load(),
	}
}

func (t *TCPTransport) coalescing() bool {
	return t.cfg.WireVersion == wire.VersionBinary && t.cfg.CoalesceWindow >= 0
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := wire.NewFrameReader(conn)
	for {
		var msg wire.Message
		if err := dec.ReadMessage(&msg); err != nil {
			// Any framing or decode error poisons the stream (by far most
			// commonly a clean peer close); drop the connection.
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- msg:
		default:
			// Inbox full: shed load rather than stall the peer, but account
			// for it so soak tests can assert on loss.
			t.inboxSheds.Add(1)
		}
	}
}

// Send writes msg to addr over a cached connection, dialling on demand and
// retrying once with a fresh connection on failure. Dials and writes are
// deadline-bounded by the transport's TCPConfig. Coalescable control
// messages may be buffered up to the coalesce window; everything else is
// written immediately (flushing any pending container frame first, so
// per-link ordering holds).
func (t *TCPTransport) Send(addr string, msg wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	c := t.conns[addr]
	t.mu.Unlock()

	if c != nil {
		if err := c.encode(&msg); err == nil {
			return nil
		}
		t.dropConn(addr, c)
	}
	c, err := t.dial(addr)
	if err != nil {
		t.fabricDrops.Add(1)
		return err
	}
	if err := c.encode(&msg); err != nil {
		t.dropConn(addr, c)
		t.fabricDrops.Add(1)
		return fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	return nil
}

// SendMany implements MultiSender: on the binary wire version msg is
// encoded exactly once into a pooled buffer and the same frame bytes are
// written to every address (each write still deadline-bounded, each failed
// link redialled once). The gob version falls back to per-link Send — its
// per-stream encoder state makes frames non-shareable, which is one of the
// reasons it is being retired. each (optional) observes every link's
// outcome.
func (t *TCPTransport) SendMany(addrs []string, msg wire.Message, each func(addr string, err error)) {
	if t.cfg.WireVersion != wire.VersionBinary {
		for _, addr := range addrs {
			err := t.Send(addr, msg)
			if each != nil {
				each(addr, err)
			}
		}
		return
	}
	buf := wire.GetEncodeBuffer()
	frame, err := wire.AppendMessage(buf, &msg)
	if err != nil {
		wire.PutEncodeBuffer(buf)
		for _, addr := range addrs {
			if each != nil {
				each(addr, err)
			}
		}
		return
	}
	for _, addr := range addrs {
		err := t.sendRaw(addr, frame)
		if each != nil {
			each(addr, err)
		}
	}
	wire.PutEncodeBuffer(frame)
}

// sendRaw delivers one pre-encoded frame to addr with the same cached
// connection + single redial contract as Send.
func (t *TCPTransport) sendRaw(addr string, frame []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	c := t.conns[addr]
	t.mu.Unlock()

	if c != nil {
		if err := c.writeRaw(frame); err == nil {
			return nil
		}
		t.dropConn(addr, c)
	}
	c, err := t.dial(addr)
	if err != nil {
		t.fabricDrops.Add(1)
		return err
	}
	if err := c.writeRaw(frame); err != nil {
		t.dropConn(addr, c)
		t.fabricDrops.Add(1)
		return fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	return nil
}

func (t *TCPTransport) dial(addr string) (*tcpConn, error) {
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	fw, err := wire.NewFrameWriterVersion(conn, t.cfg.WireVersion)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c := &tcpConn{t: t, conn: conn, enc: fw, writeTmo: t.cfg.WriteTimeout}
	if t.coalescing() {
		c.coal = newCoalescer(t.cfg.CoalesceWindow, t.cfg.CoalesceLimit, c.kickFlush)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if old, dup := t.conns[addr]; dup {
		// A concurrent dial won; keep the existing connection.
		t.mu.Unlock()
		conn.Close()
		return old, nil
	}
	t.conns[addr] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.close()
}

// encode writes (or, for coalescable control messages, buffers) one message.
func (c *tcpConn) encode(msg *wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return fmt.Errorf("transport: connection poisoned by failed flush")
	}
	if c.coal != nil && coalescable(msg.Type) {
		full, err := c.coal.add(msg)
		if err != nil {
			return err
		}
		if full {
			return c.flushLocked()
		}
		return nil
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	if err := c.deadline(); err != nil {
		return err
	}
	return c.enc.WriteMessage(msg)
}

// writeRaw flushes any pending container frame and writes pre-encoded frame
// bytes directly — the fan-out path, which bypasses per-message encoding.
func (c *tcpConn) writeRaw(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return fmt.Errorf("transport: connection poisoned by failed flush")
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	if err := c.deadline(); err != nil {
		return err
	}
	_, err := c.conn.Write(frame)
	return err
}

// flushLocked writes the pending container frame, if any. Coalesced types
// are loss-tolerant (re-sent every epoch), so a failed flush just poisons
// the connection for the caller to redial.
func (c *tcpConn) flushLocked() error {
	if c.coal == nil || c.coal.pendingMsgs() == 0 {
		return nil
	}
	sub, msgs := c.coal.take()
	if err := c.deadline(); err != nil {
		c.broken = true
		return err
	}
	// A lone message still ships in a (one-element) container: the framing
	// overhead is two bytes and the write path stays single-shape.
	if err := c.enc.WriteCoalesced(sub); err != nil {
		c.broken = true
		return err
	}
	c.t.coalesceMsgs.Add(uint64(msgs))
	c.t.coalesceFlush.Add(1)
	return nil
}

// kickFlush is the coalesce timer callback: flush whatever is pending.
func (c *tcpConn) kickFlush() {
	c.mu.Lock()
	err := c.flushLocked()
	c.mu.Unlock()
	if err != nil {
		// The connection is broken; Send's redial path replaces it. The
		// pending beacons/digests are lost, exactly like any other message a
		// dying TCP connection takes with it — the next epoch re-sends them.
		c.t.fabricDrops.Add(1)
	}
}

func (c *tcpConn) deadline() error {
	if c.writeTmo > 0 {
		return c.conn.SetWriteDeadline(time.Now().Add(c.writeTmo))
	}
	return nil
}

// close flushes pending control messages best-effort and closes the socket.
func (c *tcpConn) close() {
	c.mu.Lock()
	_ = c.flushLocked()
	if c.coal != nil && c.coal.timer != nil {
		c.coal.timer.Stop()
		c.coal.timer = nil
	}
	c.mu.Unlock()
	c.conn.Close()
}

// Close shuts the listener and all cached connections and closes the inbox.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		c.close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
	return err
}
