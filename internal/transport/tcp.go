package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"groupcast/internal/wire"
)

// DefaultSendQueueLen is the per-link outbound queue bound: deep enough to
// absorb a relay burst, shallow enough that a stalled peer wastes at most a
// few hundred frames of memory before the breaker takes over.
const DefaultSendQueueLen = 256

// TCPConfig bounds the TCP transport's blocking operations and selects its
// wire behaviour. A dead or wedged peer must never stall Send (and the
// heartbeat loop behind it) indefinitely.
type TCPConfig struct {
	// DialTimeout bounds connection establishment. Zero uses the default.
	DialTimeout time.Duration
	// WriteTimeout bounds each message write (applied as a per-write
	// deadline on the connection). Zero uses the default.
	WriteTimeout time.Duration
	// WireVersion selects the frame encoding this endpoint writes:
	// wire.VersionBinary (the default) or wire.VersionGob (legacy, kept for
	// one release of mixed-cluster compatibility). Reads always accept both
	// — the frame reader sniffs each frame.
	WireVersion int
	// CoalesceWindow is how long small control messages (beacons, digests)
	// may wait per link to share one container frame. Zero uses
	// DefaultCoalesceWindow; negative disables coalescing. Only the binary
	// wire version coalesces.
	CoalesceWindow time.Duration
	// CoalesceLimit is the pending-bytes threshold that flushes a link's
	// container frame before the window elapses. Zero uses
	// DefaultCoalesceLimit.
	CoalesceLimit int
	// InboxCapacity bounds the prioritized inbound queue. Zero uses
	// DefaultInboxCapacity.
	InboxCapacity int
	// ClasslessInbox selects the legacy single-FIFO inbound shed policy
	// (arrivals shed when full regardless of class) instead of the
	// class-prioritized queue. Kept as the overload ablation baseline.
	ClasslessInbox bool
	// SendQueueLen bounds each link's outbound queue (frames waiting for
	// the link's writer goroutine). Zero uses DefaultSendQueueLen.
	SendQueueLen int
	// BreakerThreshold is the consecutive-failure count that opens a
	// destination's circuit breaker. Zero uses DefaultBreakerThreshold;
	// negative disables breakers.
	BreakerThreshold int
	// BreakerBackoff is the initial fail-fast window after a breaker opens
	// (doubles per failed probe up to BreakerMaxBackoff). Zeros use the
	// defaults.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
}

// DefaultTCPConfig returns the timeouts and wire settings used by ListenTCP.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		DialTimeout:       5 * time.Second,
		WriteTimeout:      5 * time.Second,
		WireVersion:       wire.DefaultVersion,
		InboxCapacity:     DefaultInboxCapacity,
		SendQueueLen:      DefaultSendQueueLen,
		BreakerThreshold:  DefaultBreakerThreshold,
		BreakerBackoff:    DefaultBreakerBackoff,
		BreakerMaxBackoff: DefaultBreakerMaxBackoff,
	}
}

// TCPTransport is a frame-coded TCP implementation of Transport speaking the
// dual-version wire codec (see internal/wire: a sniffing FrameReader, so a
// single cluster can mix binary- and gob-speaking nodes during an upgrade,
// with a hard frame size cap either way so a hostile or corrupted stream
// fails fast instead of driving huge allocations). Each endpoint listens on
// its address; outbound connections are cached per destination and
// redialled once on failure.
//
// Inbound messages land in a class-prioritized bounded queue (PrioInbox):
// under overload, control traffic displaces best-effort payloads instead of
// being shed behind them. Outbound, every link owns a bounded send queue
// drained by a writer goroutine, so one stalled peer delays only its own
// queue — never the caller, never the other links of a SendMany fan-out. A
// per-destination circuit breaker converts repeated failures (dial errors,
// write errors, full send queues) into fast rejections with a half-open
// probe after backoff.
//
// On the binary wire version the transport additionally coalesces per-link
// control messages (beacons and digests share one container frame, flushed
// on a short timer or size threshold) and implements MultiSender: a fan-out
// message is encoded once into a pooled, reference-counted buffer and the
// same bytes are queued to every link — the zero-copy half of the relay
// hot path.
type TCPTransport struct {
	ln    net.Listener
	cfg   TCPConfig
	inbox *PrioInbox

	fabricDrops    atomic.Uint64
	sendQueueDrops atomic.Uint64
	breakerRejects atomic.Uint64
	coalesceMsgs   atomic.Uint64
	coalesceFlush  atomic.Uint64

	mu       sync.Mutex
	conns    map[string]*tcpConn
	breakers map[string]*breaker
	inbound  map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// outItem is one queued outbound unit: either pre-encoded frame bytes
// (binary wire — possibly shared across a fan-out via refs) or a message
// value the writer's own FrameWriter encodes (gob wire, whose per-stream
// encoder state forbids pre-encoding).
type outItem struct {
	frame []byte
	refs  *atomic.Int32 // nil: exclusive pooled frame
	msg   *wire.Message // gob wire only
	msgs  int           // messages carried (coalesced containers carry >1)
}

// releaseItem returns an item's frame buffer to the encode pool once the
// last holder lets go.
func releaseItem(it outItem) {
	if it.frame == nil {
		return
	}
	if it.refs == nil || it.refs.Add(-1) == 0 {
		wire.PutEncodeBuffer(it.frame)
	}
}

type tcpConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn
	brk  *breaker
	fw   *wire.FrameWriter // gob wire: owned by the writer goroutine

	writeTmo   time.Duration
	sendq      chan outItem
	writerDone chan struct{} // closed when the writer goroutine exits

	mu     sync.Mutex
	coal   *coalescer // nil when coalescing is disabled
	closed bool
}

var (
	_ Transport       = (*TCPTransport)(nil)
	_ DropCounter     = (*TCPTransport)(nil)
	_ QueueReporter   = (*TCPTransport)(nil)
	_ MultiSender     = (*TCPTransport)(nil)
	_ BreakerReporter = (*TCPTransport)(nil)
)

// ListenTCP starts an endpoint on addr ("host:port"; ":0" picks a free
// port) with the default configuration (binary wire version, coalescing on).
func ListenTCP(addr string) (*TCPTransport, error) {
	return ListenTCPConfig(addr, DefaultTCPConfig())
}

// ListenTCPConfig starts an endpoint with explicit configuration (zero
// fields fall back to the defaults).
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCPTransport, error) {
	def := DefaultTCPConfig()
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = def.DialTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = def.WriteTimeout
	}
	if cfg.WireVersion == 0 {
		cfg.WireVersion = def.WireVersion
	}
	if cfg.InboxCapacity <= 0 {
		cfg.InboxCapacity = def.InboxCapacity
	}
	if cfg.SendQueueLen <= 0 {
		cfg.SendQueueLen = def.SendQueueLen
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = def.BreakerThreshold
	}
	if cfg.BreakerBackoff <= 0 {
		cfg.BreakerBackoff = def.BreakerBackoff
	}
	if cfg.BreakerMaxBackoff <= 0 {
		cfg.BreakerMaxBackoff = def.BreakerMaxBackoff
	}
	if _, err := wire.NewFrameWriterVersion(nil, cfg.WireVersion); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCPTransport{
		ln:       ln,
		cfg:      cfg,
		inbox:    NewPrioInbox(cfg.InboxCapacity, cfg.ClasslessInbox),
		conns:    make(map[string]*tcpConn),
		breakers: make(map[string]*breaker),
		inbound:  make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Recv returns the inbound stream (class-prioritized).
func (t *TCPTransport) Recv() <-chan wire.Message { return t.inbox.Recv() }

// QueueDepth samples the inbox occupancy.
func (t *TCPTransport) QueueDepth() int { return t.inbox.Depth() }

// QueueCapacity reports the inbox bound.
func (t *TCPTransport) QueueCapacity() int { return t.inbox.Capacity() }

// InboxQueue exposes the prioritized inbox for tests and experiments that
// assert on per-class accept/shed accounting.
func (t *TCPTransport) InboxQueue() *PrioInbox { return t.inbox }

// WireVersion reports the frame encoding this endpoint writes.
func (t *TCPTransport) WireVersion() int { return t.cfg.WireVersion }

// DropStats reports inbound messages shed on a full inbox (broken down by
// class), outbound messages lost to dial/write failures, frames dropped on
// full per-link send queues, and sends rejected by open breakers.
func (t *TCPTransport) DropStats() DropStats {
	out := t.inbox.dropStats()
	out.FabricDrops = t.fabricDrops.Load()
	out.SendQueueDrops = t.sendQueueDrops.Load()
	out.BreakerRejects = t.breakerRejects.Load()
	return out
}

// Breakers snapshots every destination's circuit breaker, sorted by address.
func (t *TCPTransport) Breakers() []BreakerInfo {
	t.mu.Lock()
	out := make([]BreakerInfo, 0, len(t.breakers))
	for addr, b := range t.breakers {
		out = append(out, b.snapshot(addr))
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// OutboundQueueDepth sums the frames waiting in every link's send queue —
// the outbound counterpart of QueueDepth for the overload gauges.
func (t *TCPTransport) OutboundQueueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, c := range t.conns {
		total += len(c.sendq)
	}
	return total
}

// CoalesceStats reports how many control messages travelled inside
// container frames and how many container frames carried them.
func (t *TCPTransport) CoalesceStats() CoalesceStats {
	return CoalesceStats{
		Msgs:   t.coalesceMsgs.Load(),
		Frames: t.coalesceFlush.Load(),
	}
}

func (t *TCPTransport) coalescing() bool {
	return t.cfg.WireVersion == wire.VersionBinary && t.cfg.CoalesceWindow >= 0
}

// breakerLocked returns addr's breaker, creating it on first use. Caller
// holds t.mu.
func (t *TCPTransport) breakerLocked(addr string) *breaker {
	b := t.breakers[addr]
	if b == nil {
		b = newBreaker(t.cfg.BreakerThreshold, t.cfg.BreakerBackoff, t.cfg.BreakerMaxBackoff)
		t.breakers[addr] = b
	}
	return b
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := wire.NewFrameReader(conn)
	for {
		var msg wire.Message
		if err := dec.ReadMessage(&msg); err != nil {
			// Any framing or decode error poisons the stream (by far most
			// commonly a clean peer close); drop the connection.
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		// The prioritized inbox sheds (with per-class accounting) when full
		// rather than stalling the peer.
		t.inbox.Push(msg)
	}
}

// Send queues msg for addr over a cached connection, dialling on demand and
// retrying once with a fresh connection when the cached one has died. The
// actual write happens on the link's writer goroutine, so a slow peer
// delays only its own queue; a full queue or an open breaker fails the Send
// immediately. Coalescable control messages may be buffered up to the
// coalesce window; everything else is queued at once (flushing any pending
// container frame first, so per-link ordering holds).
func (t *TCPTransport) Send(addr string, msg wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	c := t.conns[addr]
	brk := t.breakerLocked(addr)
	t.mu.Unlock()

	if !brk.allow() {
		t.breakerRejects.Add(1)
		return fmt.Errorf("%w: %s", ErrBreakerOpen, addr)
	}
	binary := t.cfg.WireVersion == wire.VersionBinary
	attempt := func(c *tcpConn) error {
		if binary {
			return c.send(&msg)
		}
		return c.sendGob(&msg)
	}
	if c != nil {
		err := attempt(c)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrSendQueueFull) {
			t.sendQueueDrops.Add(1)
			brk.onFailure()
			return fmt.Errorf("transport: send to %s: %w", addr, err)
		}
		// The cached connection is closing or poisoned: redial once.
		t.dropConn(addr, c)
	}
	c, err := t.dial(addr)
	if err != nil {
		t.fabricDrops.Add(1)
		brk.onFailure()
		return err
	}
	if err := attempt(c); err != nil {
		if errors.Is(err, ErrSendQueueFull) {
			t.sendQueueDrops.Add(1)
		} else {
			t.dropConn(addr, c)
			t.fabricDrops.Add(1)
		}
		brk.onFailure()
		return fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	return nil
}

// SendMany implements MultiSender: on the binary wire version msg is
// encoded exactly once into a pooled, reference-counted buffer and the same
// frame bytes are queued to every address — a stalled link rejects fast
// (full queue or open breaker) without delaying the others. The gob version
// falls back to per-link Send — its per-stream encoder state makes frames
// non-shareable, which is one of the reasons it is being retired. each
// (optional) observes every link's outcome.
func (t *TCPTransport) SendMany(addrs []string, msg wire.Message, each func(addr string, err error)) {
	if t.cfg.WireVersion != wire.VersionBinary {
		for _, addr := range addrs {
			err := t.Send(addr, msg)
			if each != nil {
				each(addr, err)
			}
		}
		return
	}
	buf := wire.GetEncodeBuffer()
	frame, err := wire.AppendMessage(buf, &msg)
	if err != nil {
		wire.PutEncodeBuffer(buf)
		for _, addr := range addrs {
			if each != nil {
				each(addr, err)
			}
		}
		return
	}
	// One reference per link plus one held here, so the frame cannot be
	// pooled while links are still being offered it.
	refs := new(atomic.Int32)
	refs.Store(int32(len(addrs)) + 1)
	for _, addr := range addrs {
		err := t.sendRaw(addr, frame, refs)
		if err != nil {
			// The link never took ownership of its reference.
			releaseItem(outItem{frame: frame, refs: refs})
		}
		if each != nil {
			each(addr, err)
		}
	}
	releaseItem(outItem{frame: frame, refs: refs})
}

// sendRaw queues one pre-encoded shared frame to addr with the same cached
// connection + single redial + breaker contract as Send.
func (t *TCPTransport) sendRaw(addr string, frame []byte, refs *atomic.Int32) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	c := t.conns[addr]
	brk := t.breakerLocked(addr)
	t.mu.Unlock()

	if !brk.allow() {
		t.breakerRejects.Add(1)
		return fmt.Errorf("%w: %s", ErrBreakerOpen, addr)
	}
	if c != nil {
		err := c.sendShared(frame, refs)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrSendQueueFull) {
			t.sendQueueDrops.Add(1)
			brk.onFailure()
			return fmt.Errorf("transport: send to %s: %w", addr, err)
		}
		t.dropConn(addr, c)
	}
	c, err := t.dial(addr)
	if err != nil {
		t.fabricDrops.Add(1)
		brk.onFailure()
		return err
	}
	if err := c.sendShared(frame, refs); err != nil {
		if errors.Is(err, ErrSendQueueFull) {
			t.sendQueueDrops.Add(1)
		} else {
			t.dropConn(addr, c)
			t.fabricDrops.Add(1)
		}
		brk.onFailure()
		return fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	return nil
}

func (t *TCPTransport) dial(addr string) (*tcpConn, error) {
	t.mu.Lock()
	brk := t.breakerLocked(addr)
	t.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	var fw *wire.FrameWriter
	if t.cfg.WireVersion != wire.VersionBinary {
		fw, err = wire.NewFrameWriterVersion(conn, t.cfg.WireVersion)
		if err != nil {
			conn.Close()
			return nil, err
		}
	}
	c := &tcpConn{
		t:          t,
		addr:       addr,
		conn:       conn,
		brk:        brk,
		fw:         fw,
		writeTmo:   t.cfg.WriteTimeout,
		sendq:      make(chan outItem, t.cfg.SendQueueLen),
		writerDone: make(chan struct{}),
	}
	if t.coalescing() {
		c.coal = newCoalescer(t.cfg.CoalesceWindow, t.cfg.CoalesceLimit, c.kickFlush)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if old, dup := t.conns[addr]; dup {
		// A concurrent dial won; keep the existing connection.
		t.mu.Unlock()
		conn.Close()
		return old, nil
	}
	t.conns[addr] = c
	t.wg.Add(1)
	t.mu.Unlock()
	go c.writeLoop()
	return c, nil
}

// detachConn removes c from the connection cache (if still current)
// without closing it.
func (t *TCPTransport) detachConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

func (t *TCPTransport) dropConn(addr string, c *tcpConn) {
	t.detachConn(addr, c)
	c.close()
}

// send encodes one message (binary wire) and queues it, buffering
// coalescable control messages in the per-link container frame instead.
func (c *tcpConn) send(msg *wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coal != nil && coalescable(msg.Type) {
		full, err := c.coal.add(msg)
		if err != nil {
			return err
		}
		if full {
			return c.flushLocked()
		}
		return nil
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	buf := wire.GetEncodeBuffer()
	frame, err := wire.AppendMessage(buf, msg)
	if err != nil {
		wire.PutEncodeBuffer(buf)
		return err
	}
	if err := c.enqueueLocked(outItem{frame: frame, msgs: 1}); err != nil {
		wire.PutEncodeBuffer(frame)
		return err
	}
	return nil
}

// sendShared queues a fan-out frame whose buffer is shared across links.
// On success the queue owns one of the frame's references.
func (c *tcpConn) sendShared(frame []byte, refs *atomic.Int32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	return c.enqueueLocked(outItem{frame: frame, refs: refs, msgs: 1})
}

// sendGob queues a message value for the writer goroutine's FrameWriter
// (gob frames cannot be pre-encoded — the encoder state lives per stream).
func (c *tcpConn) sendGob(msg *wire.Message) error {
	cp := *msg
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enqueueLocked(outItem{msg: &cp, msgs: 1})
}

// enqueueLocked offers an item to the send queue without blocking. Caller
// holds c.mu (which is what makes flush-then-enqueue sequences atomic and
// preserves per-link FIFO order across senders).
func (c *tcpConn) enqueueLocked(it outItem) error {
	if c.closed {
		return errConnClosing
	}
	select {
	case c.sendq <- it:
		return nil
	default:
		return ErrSendQueueFull
	}
}

var errConnClosing = errors.New("transport: connection closing")

// flushLocked queues the pending container frame, if any. Coalesced types
// are loss-tolerant (re-sent every epoch), so a full send queue sheds the
// container — counted, breaker-notified — without failing the caller.
func (c *tcpConn) flushLocked() error {
	if c.coal == nil || c.coal.pendingMsgs() == 0 {
		return nil
	}
	sub, msgs := c.coal.take()
	buf := wire.GetEncodeBuffer()
	frame, err := wire.AppendCoalesced(buf, sub)
	if err != nil {
		wire.PutEncodeBuffer(buf)
		return err
	}
	if err := c.enqueueLocked(outItem{frame: frame, msgs: msgs}); err != nil {
		wire.PutEncodeBuffer(frame)
		if errors.Is(err, ErrSendQueueFull) {
			c.t.sendQueueDrops.Add(uint64(msgs))
			c.brk.onFailure()
			return nil
		}
		return err
	}
	c.t.coalesceMsgs.Add(uint64(msgs))
	c.t.coalesceFlush.Add(1)
	return nil
}

// kickFlush is the coalesce timer callback: flush whatever is pending.
func (c *tcpConn) kickFlush() {
	c.mu.Lock()
	err := c.flushLocked()
	c.mu.Unlock()
	if err != nil && !errors.Is(err, errConnClosing) {
		// The pending beacons/digests are lost, exactly like any other
		// message a dying connection takes with it — the next epoch re-sends
		// them.
		c.t.fabricDrops.Add(1)
	}
}

// writeLoop drains the send queue onto the socket. It is the only goroutine
// touching the socket's write side (and the gob FrameWriter), so a stalled
// peer blocks only this loop. The first write failure trips the breaker and
// drops the connection; the rest of the queue drains as accounted loss.
func (c *tcpConn) writeLoop() {
	defer c.t.wg.Done()
	defer close(c.writerDone)
	broken := false
	for it := range c.sendq {
		if broken {
			c.t.fabricDrops.Add(uint64(it.msgs))
			releaseItem(it)
			continue
		}
		err := c.writeItem(it)
		releaseItem(it)
		if err != nil {
			broken = true
			c.t.fabricDrops.Add(uint64(it.msgs))
			c.brk.onFailure()
			c.t.detachConn(c.addr, c)
			c.closeAbort()
		} else {
			c.brk.onSuccess()
		}
	}
}

func (c *tcpConn) writeItem(it outItem) error {
	if err := c.deadline(); err != nil {
		return err
	}
	if it.frame != nil {
		_, err := c.conn.Write(it.frame)
		return err
	}
	return c.fw.WriteMessage(it.msg)
}

func (c *tcpConn) deadline() error {
	if c.writeTmo > 0 {
		return c.conn.SetWriteDeadline(time.Now().Add(c.writeTmo))
	}
	return nil
}

// close queues pending control messages best-effort, closes the send queue,
// gives the writer a bounded window to drain what was already accepted
// (matching the old synchronous path's "Send returned nil means the bytes
// went out" expectation for graceful shutdowns), then closes the socket.
func (c *tcpConn) close() {
	if !c.shut() {
		return
	}
	select {
	case <-c.writerDone:
	case <-time.After(c.drainWindow()):
		// A stalled peer holds the writer past the window; the socket close
		// below fails the in-flight write and the rest drains as loss.
	}
	c.conn.Close()
}

// closeAbort is the writer goroutine's own shutdown after a failed write:
// the socket is already broken, so there is nothing to drain and waiting on
// writerDone from the writer itself would deadlock.
func (c *tcpConn) closeAbort() {
	c.shut()
	c.conn.Close()
}

// shut marks the connection closing and closes the send queue, reporting
// whether this call did the transition.
func (c *tcpConn) shut() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	_ = c.flushLocked()
	c.closed = true
	if c.coal != nil && c.coal.timer != nil {
		c.coal.timer.Stop()
		c.coal.timer = nil
	}
	close(c.sendq)
	return true
}

// drainWindow bounds how long close waits for the writer to finish the
// accepted queue.
func (c *tcpConn) drainWindow() time.Duration {
	if c.writeTmo > 0 && c.writeTmo < time.Second {
		return c.writeTmo
	}
	return time.Second
}

// Close shuts the listener, all cached connections (waiting for their
// writer goroutines), and the inbox.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		c.close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	t.inbox.Close()
	return err
}
