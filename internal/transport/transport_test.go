package transport

import (
	"errors"
	"testing"
	"time"

	"groupcast/internal/wire"
)

func recvOne(t *testing.T, tr Transport, timeout time.Duration) wire.Message {
	t.Helper()
	select {
	case msg, ok := <-tr.Recv():
		if !ok {
			t.Fatal("inbox closed")
		}
		return msg
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
	}
	return wire.Message{}
}

func TestMemNetworkBasics(t *testing.T) {
	n := NewMemNetwork()
	a := n.NextEndpoint()
	b := n.NextEndpoint()
	if a.Addr() == b.Addr() {
		t.Fatal("duplicate generated addresses")
	}
	msg := wire.Message{Type: wire.TProbe, From: wire.PeerInfo{Addr: a.Addr()}}
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, time.Second)
	if got.Type != wire.TProbe || got.From.Addr != a.Addr() {
		t.Fatalf("got %+v", got)
	}
}

func TestMemNetworkNamedEndpointsAndDuplicates(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Endpoint("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("x"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestMemNetworkUnknownDestination(t *testing.T) {
	n := NewMemNetwork()
	a := n.NextEndpoint()
	if err := a.Send("nowhere", wire.Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemNetworkLatency(t *testing.T) {
	n := NewMemNetwork()
	n.SetLatency(func(from, to string) time.Duration { return 30 * time.Millisecond })
	a := n.NextEndpoint()
	b := n.NextEndpoint()
	start := time.Now()
	if err := a.Send(b.Addr(), wire.Message{Type: wire.TProbe}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered in %v despite 30ms latency", elapsed)
	}
}

func TestMemNetworkDrops(t *testing.T) {
	n := NewMemNetwork()
	n.SetDropRate(1.0, 1)
	a := n.NextEndpoint()
	b := n.NextEndpoint()
	if err := a.Send(b.Addr(), wire.Message{Type: wire.TProbe}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message delivered despite 100% drop rate")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemEndpointClose(t *testing.T) {
	n := NewMemNetwork()
	a := n.NextEndpoint()
	b := n.NextEndpoint()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := b.Send(a.Addr(), wire.Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	// Sending to a departed endpoint reports unknown.
	if err := a.Send(b.Addr(), wire.Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
	// Inbox must be closed.
	if _, ok := <-b.Recv(); ok {
		t.Fatal("closed endpoint inbox still open")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	msg := wire.Message{
		Type:    wire.TAdvertise,
		From:    wire.PeerInfo{Addr: a.Addr(), Capacity: 100, Coord: []float64{1, 2}},
		GroupID: "demo",
		TTL:     7,
		Data:    []byte("hello"),
	}
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, 2*time.Second)
	if got.GroupID != "demo" || string(got.Data) != "hello" || got.From.Capacity != 100 {
		t.Fatalf("got %+v", got)
	}
	// Reply over the reverse direction (separate connection).
	if err := b.Send(got.From.Addr, wire.Message{Type: wire.TProbeResp}); err != nil {
		t.Fatal(err)
	}
	back := recvOne(t, a, 2*time.Second)
	if back.Type != wire.TProbeResp {
		t.Fatalf("got %+v", back)
	}
}

func TestTCPTransportConnectionReuseAndMany(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	deadline := time.After(5 * time.Second)
	for len(seen) < count {
		select {
		case msg := <-b.Recv():
			seen[msg.MsgID] = true
		case <-deadline:
			t.Fatalf("received %d of %d", len(seen), count)
		}
	}
}

func TestTCPTransportSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := a.Send("127.0.0.1:1", wire.Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPTransportDialFailure(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A port nobody listens on.
	if err := a.Send("127.0.0.1:1", wire.Message{}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestWireTypeStrings(t *testing.T) {
	types := []wire.Type{
		wire.TProbe, wire.TProbeResp, wire.TConnect, wire.TBackConnect,
		wire.TBackAccept, wire.TAdvertise, wire.TJoin, wire.TSearch,
		wire.TSearchHit, wire.TPayload, wire.TLeave, wire.THeartbeat,
		wire.THeartbeatAck,
	}
	seen := make(map[string]bool)
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if wire.Type(99).String() == "" {
		t.Fatal("unknown type has empty name")
	}
}

func TestTCPTransportReconnectsAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	if err := a.Send(addrB, wire.Message{Type: wire.TProbe}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 2*time.Second)
	// Kill b; a's cached connection is now dead.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart a listener on the same address.
	b2, err := ListenTCP(addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	// Writes to the dead cached connection may "succeed" until the OS
	// reports the reset, at which point Send drops the connection and
	// redials. Keep sending until one arrives.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = a.Send(addrB, wire.Message{Type: wire.TPayload})
		select {
		case msg, ok := <-b2.Recv():
			if !ok {
				t.Fatal("inbox closed")
			}
			if msg.Type != wire.TPayload {
				t.Fatalf("got %+v", msg)
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no message arrived after peer restart")
		}
	}
}
