package transport

import (
	"sync"
	"time"
)

// Slow-peer circuit breaker defaults. The threshold is consecutive
// failures (write errors, dial failures, full send queues) before the
// breaker opens; backoff doubles on every failed half-open probe up to the
// cap, so a dead peer costs one cheap probe per backoff instead of a
// deadline-bounded write per message.
const (
	DefaultBreakerThreshold  = 3
	DefaultBreakerBackoff    = 250 * time.Millisecond
	DefaultBreakerMaxBackoff = 8 * time.Second
)

// breaker guards one destination. Closed passes sends through; threshold
// consecutive failures open it; while open, sends fail fast until the
// backoff elapses, then exactly one send is admitted as a half-open probe
// whose outcome recloses (success) or reopens with doubled backoff
// (failure). A threshold < 0 disables the breaker entirely.
//
// With the asynchronous send queue, a "failure" is reported from wherever
// the loss surfaces: a synchronous dial error, a full send queue (the
// slow-peer signal — the writer cannot drain as fast as the node
// produces), or the writer goroutine's deadline-bounded write failing.
// The half-open probe's outcome likewise arrives asynchronously from the
// writer; until it does, every other send to the destination fails fast.
type breaker struct {
	threshold  int
	minBackoff time.Duration
	maxBackoff time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	trips    uint64
	backoff  time.Duration
	openedAt time.Time
	probing  bool // half-open probe in flight
}

func newBreaker(threshold int, minBackoff, maxBackoff time.Duration) *breaker {
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if minBackoff <= 0 {
		minBackoff = DefaultBreakerBackoff
	}
	if maxBackoff <= 0 {
		maxBackoff = DefaultBreakerMaxBackoff
	}
	return &breaker{threshold: threshold, minBackoff: minBackoff, maxBackoff: maxBackoff}
}

// allow reports whether a send may proceed now. An open breaker past its
// backoff admits the caller as the half-open probe.
func (b *breaker) allow() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.backoff {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a completed write: failures reset and an open or
// half-open breaker recloses.
func (b *breaker) onSuccess() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.backoff = 0
	}
	b.mu.Unlock()
}

// onFailure records a failed send. Threshold consecutive failures trip a
// closed breaker; any failure reopens a half-open one with doubled backoff.
func (b *breaker) onFailure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.tripLocked()
		}
	case BreakerHalfOpen:
		b.tripLocked()
	case BreakerOpen:
		// Stragglers from the queue draining after the trip; nothing new.
	}
	b.mu.Unlock()
}

func (b *breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.trips++
	b.probing = false
	b.failures = 0
	if b.backoff == 0 {
		b.backoff = b.minBackoff
	} else if b.backoff < b.maxBackoff {
		b.backoff *= 2
		if b.backoff > b.maxBackoff {
			b.backoff = b.maxBackoff
		}
	}
}

// snapshot renders the breaker for introspection.
func (b *breaker) snapshot(addr string) BreakerInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerInfo{
		Addr:      addr,
		State:     b.state.String(),
		Failures:  b.failures,
		Trips:     b.trips,
		BackoffMs: b.backoff.Milliseconds(),
	}
}

// state returns the current position (for pressure sampling).
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
