package transport

import (
	"testing"
	"time"

	"groupcast/internal/wire"
)

// chaosPair wires two chaos-wrapped in-memory endpoints on one fault layer.
func chaosPair(seed int64) (*ChaosNetwork, *ChaosEndpoint, *ChaosEndpoint) {
	mem := NewMemNetwork()
	cn := NewChaosNetwork(seed)
	return cn, cn.Wrap(mem.NextEndpoint()), cn.Wrap(mem.NextEndpoint())
}

// drain pulls every message currently deliverable within the window and
// returns the MsgIDs in arrival order.
func drain(tr Transport, window time.Duration) []uint64 {
	var out []uint64
	deadline := time.After(window)
	for {
		select {
		case msg := <-tr.Recv():
			out = append(out, msg.MsgID)
		case <-deadline:
			return out
		}
	}
}

func TestChaosZeroRuleIsTransparent(t *testing.T) {
	_, a, b := chaosPair(1)
	for i := 1; i <= 50; i++ {
		if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(b, 200*time.Millisecond); len(got) != 50 {
		t.Fatalf("fault-free chaos layer delivered %d of 50", len(got))
	}
}

func TestChaosDropIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		cn, a, b := chaosPair(seed)
		cn.SetDefaultRule(LinkRule{Drop: 0.5})
		for i := 1; i <= 200; i++ {
			if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return drain(b, 200*time.Millisecond)
	}
	first, second := run(7), run(7)
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at position %d: %d vs %d", i, first[i], second[i])
		}
	}
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("50%% drop delivered %d of 200", len(first))
	}
	other := run(8)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if other[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestChaosPerLinkStreamsAreIndependent(t *testing.T) {
	// The a→b decision sequence must not shift when unrelated c→d traffic
	// interleaves: each link owns its own seeded stream.
	run := func(withNoise bool) []uint64 {
		mem := NewMemNetwork()
		cn := NewChaosNetwork(11)
		a, b := cn.Wrap(mem.NextEndpoint()), cn.Wrap(mem.NextEndpoint())
		c, d := cn.Wrap(mem.NextEndpoint()), cn.Wrap(mem.NextEndpoint())
		cn.SetDefaultRule(LinkRule{Drop: 0.5})
		for i := 1; i <= 100; i++ {
			if withNoise {
				_ = c.Send(d.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(1000 + i)})
			}
			if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return drain(b, 200*time.Millisecond)
	}
	quiet, noisy := run(false), run(true)
	if len(quiet) != len(noisy) {
		t.Fatalf("cross-link interference: %d vs %d deliveries", len(quiet), len(noisy))
	}
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("cross-link interference at position %d", i)
		}
	}
}

func TestChaosDropFirst(t *testing.T) {
	cn, a, b := chaosPair(1)
	cn.SetLinkRule(a.Addr(), b.Addr(), LinkRule{DropFirst: 2})
	for i := 1; i <= 3; i++ {
		if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(b, 100*time.Millisecond)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("DropFirst=2 delivered %v", got)
	}
	if st := cn.Stats(); st.RuleDrops != 2 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ds := a.DropStats(); ds.FabricDrops != 2 {
		t.Fatalf("endpoint drop stats = %+v", ds)
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	mem := NewMemNetwork()
	cn := NewChaosNetwork(1)
	a := cn.Wrap(mem.NextEndpoint())
	b := cn.Wrap(mem.NextEndpoint())
	c := cn.Wrap(mem.NextEndpoint())
	cn.Partition(a.Addr(), b.Addr())

	// Across the boundary: blocked in both directions.
	_ = a.Send(c.Addr(), wire.Message{MsgID: 1})
	_ = c.Send(a.Addr(), wire.Message{MsgID: 2})
	if got := drain(c, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned a→c delivered %v", got)
	}
	if got := drain(a, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned c→a delivered %v", got)
	}
	// Within the island: unaffected.
	if err := a.Send(b.Addr(), wire.Message{MsgID: 3}); err != nil {
		t.Fatal(err)
	}
	if got := drain(b, 100*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("island-internal traffic got %v", got)
	}
	if st := cn.Stats(); st.PartitionDrops != 2 {
		t.Fatalf("stats = %+v", st)
	}

	cn.Heal()
	if err := a.Send(c.Addr(), wire.Message{MsgID: 4}); err != nil {
		t.Fatal(err)
	}
	if got := drain(c, 100*time.Millisecond); len(got) != 1 || got[0] != 4 {
		t.Fatalf("post-heal traffic got %v", got)
	}
}

func TestChaosCrashAndRevive(t *testing.T) {
	cn, a, b := chaosPair(1)
	cn.Crash(b.Addr())
	if !cn.Crashed(b.Addr()) {
		t.Fatal("Crashed() lies")
	}
	_ = a.Send(b.Addr(), wire.Message{MsgID: 1})
	_ = b.Send(a.Addr(), wire.Message{MsgID: 2})
	if got := drain(b, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("crashed endpoint received %v", got)
	}
	if got := drain(a, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("crashed endpoint sent %v", got)
	}
	if st := cn.Stats(); st.CrashDrops != 2 {
		t.Fatalf("stats = %+v", st)
	}
	cn.Revive(b.Addr())
	if err := a.Send(b.Addr(), wire.Message{MsgID: 3}); err != nil {
		t.Fatal(err)
	}
	if got := drain(b, 100*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("post-revive got %v", got)
	}
}

func TestChaosDuplicateAndDelay(t *testing.T) {
	cn, a, b := chaosPair(1)
	cn.SetDefaultRule(LinkRule{Duplicate: 1.0, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := a.Send(b.Addr(), wire.Message{MsgID: 9}); err != nil {
		t.Fatal(err)
	}
	got := drain(b, 300*time.Millisecond)
	if len(got) != 2 || got[0] != 9 || got[1] != 9 {
		t.Fatalf("duplicate rule delivered %v", got)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delay rule delivered in %v", elapsed)
	}
	if st := cn.Stats(); st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ds := a.DropStats(); ds.Duplicates != 1 {
		t.Fatalf("endpoint stats = %+v", ds)
	}
}

func TestChaosReorderHoldsMessagesBack(t *testing.T) {
	cn, a, b := chaosPair(1)
	cn.SetLinkRule(a.Addr(), b.Addr(),
		LinkRule{Reorder: 1.0, ReorderDelay: 40 * time.Millisecond})
	start := time.Now()
	if err := a.Send(b.Addr(), wire.Message{MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	got := drain(b, 400*time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("reorder rule delivered %v", got)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("held-back message arrived in %v", elapsed)
	}
	if st := cn.Stats(); st.Reordered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChaosScheduleAndDescribe(t *testing.T) {
	cn, a, b := chaosPair(1)
	events := []FaultEvent{
		ReviveAt(80*time.Millisecond, b.Addr()),
		CrashAt(0, b.Addr()),
	}
	lines := DescribeSchedule(events)
	if len(lines) != 2 || lines[0] == lines[1] {
		t.Fatalf("describe = %v", lines)
	}
	// Events must render sorted by offset regardless of slice order.
	if want := "crash-stop"; !containsStr(lines[0], want) {
		t.Fatalf("first line %q does not mention %q", lines[0], want)
	}
	stop := cn.PlaySchedule(events)
	defer stop()
	time.Sleep(20 * time.Millisecond)
	_ = a.Send(b.Addr(), wire.Message{MsgID: 1})
	if got := drain(b, 30*time.Millisecond); len(got) != 0 {
		t.Fatalf("mid-crash delivery %v", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_ = a.Send(b.Addr(), wire.Message{MsgID: 2})
		if got := drain(b, 30*time.Millisecond); len(got) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revive event never took effect")
		}
	}
}

func TestChaosScheduleStopCancelsPending(t *testing.T) {
	cn, a, b := chaosPair(1)
	stop := cn.PlaySchedule([]FaultEvent{CrashAt(60*time.Millisecond, b.Addr())})
	stop()
	time.Sleep(100 * time.Millisecond)
	if err := a.Send(b.Addr(), wire.Message{MsgID: 5}); err != nil {
		t.Fatal(err)
	}
	if got := drain(b, 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("cancelled crash still fired; got %v", got)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMemNetworkDropStatsCounters(t *testing.T) {
	n := NewMemNetwork()
	a := n.NextEndpoint()
	b := n.NextEndpoint()
	// Fabric drops: 100% loss.
	n.SetDropRate(1.0, 1)
	if err := a.Send(b.Addr(), wire.Message{}); err != nil {
		t.Fatal(err)
	}
	if ds := a.DropStats(); ds.FabricDrops != 1 {
		t.Fatalf("fabric drop stats = %+v", ds)
	}
	n.SetDropRate(0, 1)
	// Inbox sheds: overflow the 1024-slot inbox without receiving.
	for i := 0; i < 1200; i++ {
		if err := a.Send(b.Addr(), wire.Message{MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if ds := b.DropStats(); ds.InboxSheds == 0 {
		t.Fatalf("no sheds recorded after overflow: %+v", ds)
	}
}

func TestChurnScheduleDeterministicAndPaired(t *testing.T) {
	addrs := []string{"a", "b", "c", "d"}
	const rate, down, dur = 50.0, 30 * time.Millisecond, 2 * time.Second
	ev := ChurnSchedule(9, addrs, rate, down, dur)
	if len(ev) == 0 || len(ev)%2 != 0 {
		t.Fatalf("events = %d, want a non-empty crash/revive pairing", len(ev))
	}
	again := ChurnSchedule(9, addrs, rate, down, dur)
	if len(again) != len(ev) {
		t.Fatalf("same seed produced %d then %d events", len(ev), len(again))
	}
	for i := range ev {
		if ev[i].At != again[i].At || ev[i].Desc != again[i].Desc {
			t.Fatalf("event %d differs across runs: %v vs %v", i, ev[i], again[i])
		}
	}
	if other := ChurnSchedule(10, addrs, rate, down, dur); len(other) == len(ev) {
		same := true
		for i := range ev {
			if ev[i].At != other[i].At || ev[i].Desc != other[i].Desc {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule")
		}
	}
	// Every crash pairs with a revive exactly downtime later, all crashes
	// land inside the duration, and a down node is never re-crashed before
	// its revive.
	downUntil := make(map[string]time.Duration)
	for i := 0; i < len(ev); i += 2 {
		crash, revive := ev[i], ev[i+1]
		if !containsStr(crash.Desc, "crash-stop") || !containsStr(revive.Desc, "revive") {
			t.Fatalf("pair %d = %q / %q", i/2, crash.Desc, revive.Desc)
		}
		if crash.At >= dur {
			t.Fatalf("crash at %v beyond duration %v", crash.At, dur)
		}
		if revive.At != crash.At+down {
			t.Fatalf("revive at %v, want crash %v + downtime %v", revive.At, crash.At, down)
		}
		var victim string
		for _, a := range addrs {
			if containsStr(crash.Desc, `"`+a+`"`) || containsStr(crash.Desc, " "+a) {
				victim = a
			}
		}
		if victim == "" {
			t.Fatalf("no victim recognised in %q", crash.Desc)
		}
		if downUntil[victim] > crash.At {
			t.Fatalf("%s re-crashed at %v while down until %v", victim, crash.At, downUntil[victim])
		}
		downUntil[victim] = revive.At
	}

	// Degenerate inputs yield no schedule.
	if ev := ChurnSchedule(1, nil, rate, down, dur); ev != nil {
		t.Fatalf("empty fleet schedule = %v", ev)
	}
	if ev := ChurnSchedule(1, addrs, 0, down, dur); ev != nil {
		t.Fatalf("zero-rate schedule = %v", ev)
	}
	if ev := ChurnSchedule(1, addrs, rate, -down, dur); ev != nil {
		t.Fatalf("negative-downtime schedule = %v", ev)
	}
}
