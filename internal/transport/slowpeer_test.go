package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"groupcast/internal/wire"
)

// neverReadListener accepts connections and never reads from them: from the
// sender's side the peer is alive and dialable, but once the kernel socket
// buffers fill, every write stalls — the canonical slow peer.
type neverReadListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newNeverReadListener(t *testing.T) *neverReadListener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &neverReadListener{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			l.mu.Lock()
			l.conns = append(l.conns, conn)
			l.mu.Unlock()
		}
	}()
	t.Cleanup(l.close)
	return l
}

func (l *neverReadListener) addr() string { return l.ln.Addr().String() }

func (l *neverReadListener) close() {
	l.ln.Close()
	l.mu.Lock()
	for _, c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
}

// TestSlowPeerDoesNotBlockFanOut is the memory-safety and isolation core of
// the overload plane: SendMany to a stalled peer plus a healthy one must
// deliver to the healthy link promptly, keep the caller non-blocking (the
// bounded send queue rejects instead of buffering without limit), and
// convert the stalled link's loss into accounted drops and breaker trips.
func TestSlowPeerDoesNotBlockFanOut(t *testing.T) {
	slow := newNeverReadListener(t)

	cfg := DefaultTCPConfig()
	cfg.WriteTimeout = 250 * time.Millisecond
	cfg.SendQueueLen = 4
	cfg.BreakerThreshold = 3
	cfg.BreakerBackoff = 200 * time.Millisecond
	a, err := ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Large payloads fill the kernel socket buffers toward the stalled peer
	// quickly, wedging its writer goroutine.
	const rounds = 40
	msg := wire.Message{
		Type: wire.TPayload, GroupID: "g",
		Data: make([]byte, 256<<10),
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		msg.MsgID = uint64(i)
		a.SendMany([]string{slow.addr(), b.Addr()}, msg, nil)
		// Pace under the healthy link's drain rate (the tiny 4-slot queue
		// bounds it too); the stalled link wedges regardless once the kernel
		// buffers fill.
		time.Sleep(10 * time.Millisecond)
	}
	elapsed := time.Since(start)
	// The old synchronous path would hold every fan-out behind the stalled
	// link's write deadline; the bounded queue + breaker must keep the whole
	// burst far under that.
	if elapsed > 5*time.Second {
		t.Fatalf("fan-out burst took %v with one stalled link", elapsed)
	}

	// The healthy link got every message.
	received := 0
	timeout := time.After(10 * time.Second)
	for received < rounds {
		select {
		case got := <-b.Recv():
			if got.Type == wire.TPayload {
				received++
			}
		case <-timeout:
			t.Fatalf("healthy link received %d/%d messages behind a stalled sibling", received, rounds)
		}
	}

	// The stalled link's loss is accounted, not silent.
	ds := a.DropStats()
	if ds.SendQueueDrops+ds.BreakerRejects+ds.FabricDrops == 0 {
		t.Fatalf("stalled link lost frames without accounting: %+v", ds)
	}
}

// TestChaosSlowPeerSerializesDeliveries: the SlowPeer rule turns a burst
// into a serialized trickle (each message occupies the pipe for the service
// time), and removing the rule restores instant delivery.
func TestChaosSlowPeerSerializesDeliveries(t *testing.T) {
	n := NewMemNetwork()
	cn := NewChaosNetwork(11)
	a := cn.Wrap(n.NextEndpoint())
	b := cn.Wrap(n.NextEndpoint())
	defer a.Close()
	defer b.Close()

	const perMsg = 30 * time.Millisecond
	cn.SlowPeer(b.Addr(), perMsg)

	const burst = 5
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < burst; i++ {
		select {
		case <-b.Recv():
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never arrived through the slow pipe", i)
		}
	}
	elapsed := time.Since(start)
	// Five serialized messages at 30ms each cannot finish before ~150ms;
	// allow generous scheduling slop below that.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("burst of %d drained in %v; slow pipe did not serialize", burst, elapsed)
	}
	if got := cn.Stats().Slowed; got != burst {
		t.Fatalf("Slowed = %d, want %d", got, burst)
	}

	// Removal restores the instant link.
	cn.SlowPeer(b.Addr(), 0)
	start = time.Now()
	if err := a.Send(b.Addr(), wire.Message{Type: wire.TPayload, MsgID: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("message never arrived after slow pipe removal")
	}
	if since := time.Since(start); since > 500*time.Millisecond {
		t.Fatalf("post-removal delivery took %v", since)
	}
}
