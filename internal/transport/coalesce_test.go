package transport

import (
	"testing"
	"time"

	"groupcast/internal/wire"
)

// tcpPairConfig builds two connected TCP endpoints with explicit configs.
func tcpPairConfig(t *testing.T, cfg TCPConfig) (a, b *TCPTransport) {
	t.Helper()
	a, err := ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err = ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

// TestCoalesceSharesFrames proves beacons and digests written back-to-back
// travel in fewer container frames than messages, and all arrive intact.
func TestCoalesceSharesFrames(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.CoalesceWindow = 20 * time.Millisecond
	a, b := tcpPairConfig(t, cfg)

	const rounds = 10
	for i := 0; i < rounds; i++ {
		beacon := wire.Message{Type: wire.TBeacon, GroupID: "g", Epoch: uint64(i + 1),
			From: wire.PeerInfo{Addr: a.Addr(), Capacity: 10}}
		digest := wire.Message{Type: wire.TDigest, GroupID: "g", MsgID: uint64(i + 1),
			Digest: []wire.DigestEntry{{Source: a.Addr(), High: uint64(i)}}}
		if err := a.Send(b.Addr(), beacon); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(b.Addr(), digest); err != nil {
			t.Fatal(err)
		}
	}

	var beacons, digests int
	deadline := time.After(5 * time.Second)
	for beacons < rounds || digests < rounds {
		select {
		case msg := <-b.Recv():
			switch msg.Type {
			case wire.TBeacon:
				beacons++
			case wire.TDigest:
				digests++
			}
		case <-deadline:
			t.Fatalf("got %d beacons, %d digests of %d each", beacons, digests, rounds)
		}
	}
	cs := a.CoalesceStats()
	if cs.Msgs != 2*rounds {
		t.Fatalf("coalesced msgs = %d, want %d", cs.Msgs, 2*rounds)
	}
	if cs.Frames >= cs.Msgs {
		t.Fatalf("no batching happened: %d frames for %d msgs", cs.Frames, cs.Msgs)
	}
}

// TestCoalesceOrderingWithPayloads: a payload sent after a buffered beacon
// must flush the beacon first — the receiver sees per-link FIFO order.
func TestCoalesceOrderingWithPayloads(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.CoalesceWindow = time.Hour // only explicit flushes
	a, b := tcpPairConfig(t, cfg)

	beacon := wire.Message{Type: wire.TBeacon, GroupID: "g", Epoch: 7}
	payload := wire.Message{Type: wire.TPayload, GroupID: "g", Seq: 1, Data: []byte("p")}
	if err := a.Send(b.Addr(), beacon); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	first := recvOne(t, b, 2*time.Second)
	second := recvOne(t, b, 2*time.Second)
	if first.Type != wire.TBeacon || second.Type != wire.TPayload {
		t.Fatalf("order violated: got %s then %s", first.Type, second.Type)
	}
}

// TestCoalesceTimerFlush: a lone buffered digest is flushed by the window
// timer without any follow-up traffic.
func TestCoalesceTimerFlush(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.CoalesceWindow = 5 * time.Millisecond
	a, b := tcpPairConfig(t, cfg)

	msg := wire.Message{Type: wire.TDigest, GroupID: "g",
		Digest: []wire.DigestEntry{{Source: "s", High: 3}}}
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, 2*time.Second)
	if got.Type != wire.TDigest || got.Digest[0].High != 3 {
		t.Fatalf("timer flush delivered %+v", got)
	}
}

// TestCoalesceSizeFlush: pending bytes past the limit flush immediately,
// before the timer.
func TestCoalesceSizeFlush(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.CoalesceWindow = time.Hour
	cfg.CoalesceLimit = 256
	a, b := tcpPairConfig(t, cfg)

	big := wire.Message{Type: wire.TBeacon, GroupID: "g", Epoch: 1,
		Deputies: []wire.PeerInfo{
			{Addr: "deputy-1:7000", Coord: []float64{1, 2, 3}},
			{Addr: "deputy-2:7000", Coord: []float64{4, 5, 6}},
			{Addr: "deputy-3:7000", Coord: []float64{7, 8, 9}},
			{Addr: "deputy-4:7000", Coord: []float64{1, 2, 3}},
			{Addr: "deputy-5:7000", Coord: []float64{4, 5, 6}},
		}}
	for i := 0; i < 3; i++ {
		if err := a.Send(b.Addr(), big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if got := recvOne(t, b, 2*time.Second); got.Type != wire.TBeacon {
			t.Fatalf("size flush delivered %+v", got)
		}
	}
}

// TestSendManyTCP: one encode, many links, every destination receives the
// identical message over the binary wire version.
func TestSendManyTCP(t *testing.T) {
	cfg := DefaultTCPConfig()
	a, _ := tcpPairConfig(t, cfg)
	c, err := ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ListenTCPConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close(); _ = d.Close() })

	msg := wire.Message{Type: wire.TPayload, GroupID: "fan", Seq: 4,
		From: wire.PeerInfo{Addr: a.Addr(), Coord: []float64{1, 2}, Capacity: 9},
		Data: []byte("fan-out payload")}
	var results []error
	a.SendMany([]string{c.Addr(), d.Addr(), "127.0.0.1:1"}, msg, func(addr string, err error) {
		results = append(results, err)
	})
	if len(results) != 3 {
		t.Fatalf("callback ran %d times, want 3", len(results))
	}
	if results[0] != nil || results[1] != nil {
		t.Fatalf("live links errored: %v %v", results[0], results[1])
	}
	if results[2] == nil {
		t.Fatal("dead link reported success")
	}
	for _, ep := range []*TCPTransport{c, d} {
		got := recvOne(t, ep, 2*time.Second)
		if got.Type != wire.TPayload || string(got.Data) != "fan-out payload" ||
			got.From.Capacity != 9 || got.Seq != 4 {
			t.Fatalf("fan-out corrupted at %s: %+v", ep.Addr(), got)
		}
	}
}

// TestSendManyGobFallback: the gob version cannot share encoded frames and
// falls back to per-link sends, still delivering everywhere.
func TestSendManyGobFallback(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.WireVersion = wire.VersionGob
	a, b := tcpPairConfig(t, cfg)
	msg := wire.Message{Type: wire.TPayload, GroupID: "fan", Seq: 2, Data: []byte("gob")}
	var calls int
	a.SendMany([]string{b.Addr()}, msg, func(addr string, err error) {
		calls++
		if err != nil {
			t.Fatalf("send to %s: %v", addr, err)
		}
	})
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
	if got := recvOne(t, b, 2*time.Second); string(got.Data) != "gob" {
		t.Fatalf("gob fan-out corrupted: %+v", got)
	}
}

// TestMixedWireVersionLink: a gob-speaking endpoint and a binary-speaking
// endpoint interoperate in both directions on one TCP link pair — the
// sniffing reader is what makes rolling upgrades safe.
func TestMixedWireVersionLink(t *testing.T) {
	gobCfg := DefaultTCPConfig()
	gobCfg.WireVersion = wire.VersionGob
	old, err := ListenTCPConfig("127.0.0.1:0", gobCfg)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = old.Close(); _ = neu.Close() })

	fwd := wire.Message{Type: wire.TPayload, GroupID: "mix", Seq: 1,
		From: wire.PeerInfo{Addr: old.Addr(), Coord: []float64{3, 4}}, Data: []byte("old->new")}
	if err := old.Send(neu.Addr(), fwd); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, neu, 2*time.Second); string(got.Data) != "old->new" || got.From.Coord[1] != 4 {
		t.Fatalf("gob->binary corrupted: %+v", got)
	}
	back := wire.Message{Type: wire.TPayload, GroupID: "mix", Seq: 2, Data: []byte("new->old"),
		Digest: []wire.DigestEntry{{Source: "s", High: 11}}}
	if err := neu.Send(old.Addr(), back); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, old, 2*time.Second); string(got.Data) != "new->old" || got.Digest[0].High != 11 {
		t.Fatalf("binary->gob corrupted: %+v", got)
	}
}
