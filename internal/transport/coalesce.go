package transport

import (
	"time"

	"groupcast/internal/wire"
)

// Coalescing defaults. The window is short enough to be invisible next to
// epoch-scale control traffic (beacons and digests fire once per heartbeat
// epoch) and long enough that the messages a node emits back-to-back in one
// epoch tick share a single frame and a single syscall.
const (
	// DefaultCoalesceWindow is how long a coalescable message may wait for
	// companions before the pending frame is flushed.
	DefaultCoalesceWindow = 2 * time.Millisecond
	// DefaultCoalesceLimit is the pending-bytes threshold that forces an
	// immediate flush regardless of the timer.
	DefaultCoalesceLimit = 16 << 10
)

// coalescable marks the message types allowed to wait in a per-link pending
// buffer. Only the periodic, loss-tolerant control plane qualifies: beacons
// and digests are re-sent every epoch, so delaying one by the coalesce
// window (or losing a pending frame with a dying connection) costs nothing.
// Payloads, NACKs, heartbeats (RTT-stamped), and connection setup flush
// immediately — and flush any pending frame first, so per-link ordering is
// preserved.
func coalescable(t wire.Type) bool {
	return t == wire.TBeacon || t == wire.TDigest
}

// coalescer accumulates encoded sub-messages for one link and flushes them
// as a single container frame on a size threshold or a short timer. It does
// no locking of its own: the owning connection's mutex guards every method.
type coalescer struct {
	buf    []byte // pending sub-frames (wire.AppendSubMessage encoding)
	msgs   int    // messages waiting in buf
	limit  int
	window time.Duration
	timer  *time.Timer
	// kick asks the owner to lock itself and call flushLocked; set once at
	// construction (the coalescer cannot take the lock itself).
	kick func()
}

func newCoalescer(window time.Duration, limit int, kick func()) *coalescer {
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	if limit <= 0 {
		limit = DefaultCoalesceLimit
	}
	return &coalescer{window: window, limit: limit, kick: kick}
}

// add appends msg to the pending buffer and reports whether the buffer has
// reached the flush threshold. Caller holds the connection lock.
func (co *coalescer) add(msg *wire.Message) (full bool, err error) {
	buf, err := wire.AppendSubMessage(co.buf, msg)
	if err != nil {
		return false, err
	}
	co.buf = buf
	co.msgs++
	if len(co.buf) >= co.limit {
		return true, nil
	}
	if co.timer == nil {
		co.timer = time.AfterFunc(co.window, co.kick)
	}
	return false, nil
}

// take drains the pending buffer, returning the sub-frames and message
// count, and disarms the timer. The returned slice aliases the coalescer's
// buffer: the caller holds the connection lock and must hand the bytes to
// the frame writer before releasing it (the next add, under the same lock,
// reuses the array).
func (co *coalescer) take() (subframes []byte, msgs int) {
	if co.timer != nil {
		co.timer.Stop()
		co.timer = nil
	}
	subframes, msgs = co.buf, co.msgs
	co.buf = co.buf[:0]
	co.msgs = 0
	return subframes, msgs
}

// pendingMsgs reports how many messages are waiting. Caller holds the lock.
func (co *coalescer) pendingMsgs() int { return co.msgs }

// CoalesceStats counts what the coalescing layer did: how many messages
// were buffered into container frames, and how many container frames were
// written. frames < msgs means real batching happened.
type CoalesceStats struct {
	// Msgs is the number of messages that travelled inside container frames.
	Msgs uint64
	// Frames is the number of container frames written.
	Frames uint64
}
