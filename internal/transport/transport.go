// Package transport provides the message transports of the live GroupCast
// runtime: a latency-modelled in-memory network for tests and simulations on
// one machine, and a TCP transport for real deployments, framed with the
// dual-version wire codec (hand-rolled binary by default, legacy gob for
// mixed-cluster upgrades) with per-link control-message coalescing and
// encode-once fan-out on the binary path.
package transport

import (
	"errors"

	"groupcast/internal/wire"
)

// Transport moves wire messages between nodes. Implementations must be safe
// for concurrent Send calls; Recv returns a single channel owned by the
// transport, closed by Close.
type Transport interface {
	// Addr returns this endpoint's stable address.
	Addr() string
	// Send delivers msg to the endpoint at addr (asynchronously; delivery is
	// best-effort and errors indicate immediate local failure only).
	Send(addr string, msg wire.Message) error
	// Recv is the stream of inbound messages.
	Recv() <-chan wire.Message
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// Errors shared by transports.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown destination")
	// ErrUnreachable reports a destination behind a hard fault — crashed or
	// on the far side of a partition — where a real transport would fail the
	// connection rather than silently lose the message. Probabilistic loss
	// stays silent (lost on the wire, as on UDP).
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrSendQueueFull reports a destination whose bounded outbound send
	// queue is saturated — the peer is alive but consuming slower than the
	// caller produces. The message was not queued.
	ErrSendQueueFull = errors.New("transport: send queue full")
	// ErrBreakerOpen reports a destination guarded by an open circuit
	// breaker: recent sends failed or queued up, so the transport fails
	// fast instead of burning a deadline per message. A half-open probe
	// retries the link after a backoff.
	ErrBreakerOpen = errors.New("transport: circuit breaker open")
)

// MultiSender is implemented by transports that can deliver one message to
// many destinations more cheaply than repeated Sends — the TCP transport
// encodes the frame once and writes the same bytes to every link. The node
// layer uses it for tree fan-out (publish and relay); callers fall back to
// a Send loop when the transport does not implement it. each, when non-nil,
// is called synchronously with every link's outcome, in order.
type MultiSender interface {
	SendMany(addrs []string, msg wire.Message, each func(addr string, err error))
}

// DropStats counts the messages an endpoint lost, split by cause. All
// counts are cumulative and monotonically increasing.
type DropStats struct {
	// InboxSheds counts inbound messages discarded because the endpoint's
	// inbox was full (backpressure becomes loss, like UDP). It is the sum of
	// the per-class breakdown below.
	InboxSheds uint64
	// ControlSheds, ReliableSheds and BestEffortSheds break InboxSheds down
	// by the wire.Class of the message lost. Under the prioritized inbox a
	// nonzero ControlSheds means the inbox was entirely full of control
	// traffic — the condition the overload experiment asserts never happens
	// with priority shedding while it demonstrably does on the legacy
	// single-queue policy.
	ControlSheds    uint64
	ReliableSheds   uint64
	BestEffortSheds uint64
	// FabricDrops counts outbound messages the fabric or chaos layer lost
	// (injected loss, partitions, crash-stopped peers).
	FabricDrops uint64
	// SendQueueDrops counts outbound frames discarded because a link's
	// bounded send queue was full — the peer is alive but consuming slower
	// than we produce (TCP transport only).
	SendQueueDrops uint64
	// BreakerRejects counts sends refused immediately by an open circuit
	// breaker guarding a slow or dead peer (TCP transport only).
	BreakerRejects uint64
	// Duplicates counts extra copies injected by the chaos layer.
	Duplicates uint64
}

// Total is the number of messages lost (duplicates are extra copies, not
// losses, and are excluded; the per-class shed fields are a breakdown of
// InboxSheds, not additional losses).
func (d DropStats) Total() uint64 {
	return d.InboxSheds + d.FabricDrops + d.SendQueueDrops + d.BreakerRejects
}

// Add accumulates other into d field by field (fleet-wide aggregation).
func (d *DropStats) Add(other DropStats) {
	d.InboxSheds += other.InboxSheds
	d.ControlSheds += other.ControlSheds
	d.ReliableSheds += other.ReliableSheds
	d.BestEffortSheds += other.BestEffortSheds
	d.FabricDrops += other.FabricDrops
	d.SendQueueDrops += other.SendQueueDrops
	d.BreakerRejects += other.BreakerRejects
	d.Duplicates += other.Duplicates
}

// DropCounter is implemented by transports that account for shed and
// dropped messages. The node layer surfaces these through its Stats so soak
// tests can assert on loss.
type DropCounter interface {
	DropStats() DropStats
}

// QueueReporter is implemented by transports whose inbound queue occupancy
// can be sampled. The node's metrics registry gauges and histograms feed on
// it (send-queue depth is a leading indicator of shed-induced loss), and
// the node's overload controller reads depth/capacity as its local
// pressure signal.
type QueueReporter interface {
	// QueueDepth returns the number of inbound messages buffered and not yet
	// drained by the receiver.
	QueueDepth() int
	// QueueCapacity returns the inbound queue's fixed bound (0 when
	// unbounded or unknown).
	QueueCapacity() int
}

// BreakerState is a slow-peer circuit breaker's position.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: the link is healthy, sends flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the link tripped; sends fail fast until the backoff
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: the backoff elapsed; one probe send is in flight to
	// decide between reclosing and reopening.
	BreakerHalfOpen
)

// String names the breaker state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "state(?)"
	}
}

// BreakerInfo is one destination's breaker snapshot for introspection.
type BreakerInfo struct {
	// Addr is the guarded destination.
	Addr string `json:"addr"`
	// State is the breaker's position ("closed", "open", "half-open").
	State string `json:"state"`
	// Failures is the consecutive-failure count feeding the trip decision.
	Failures int `json:"failures"`
	// Trips counts how many times the breaker has opened.
	Trips uint64 `json:"trips"`
	// BackoffMs is the current reopen backoff in milliseconds (only
	// meaningful when open).
	BackoffMs int64 `json:"backoff_ms"`
}

// BreakerReporter is implemented by transports that guard slow peers with
// per-destination circuit breakers. The introspection endpoint and the
// node's overload controller read the snapshot (open breakers raise the
// node's pressure signal).
type BreakerReporter interface {
	// Breakers snapshots every destination with breaker state, sorted by
	// address.
	Breakers() []BreakerInfo
}
