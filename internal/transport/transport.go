// Package transport provides the message transports of the live GroupCast
// runtime: a latency-modelled in-memory network for tests and simulations on
// one machine, and a TCP transport (gob-framed) for real deployments.
package transport

import (
	"errors"

	"groupcast/internal/wire"
)

// Transport moves wire messages between nodes. Implementations must be safe
// for concurrent Send calls; Recv returns a single channel owned by the
// transport, closed by Close.
type Transport interface {
	// Addr returns this endpoint's stable address.
	Addr() string
	// Send delivers msg to the endpoint at addr (asynchronously; delivery is
	// best-effort and errors indicate immediate local failure only).
	Send(addr string, msg wire.Message) error
	// Recv is the stream of inbound messages.
	Recv() <-chan wire.Message
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// Errors shared by transports.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown destination")
)
