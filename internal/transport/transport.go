// Package transport provides the message transports of the live GroupCast
// runtime: a latency-modelled in-memory network for tests and simulations on
// one machine, and a TCP transport for real deployments, framed with the
// dual-version wire codec (hand-rolled binary by default, legacy gob for
// mixed-cluster upgrades) with per-link control-message coalescing and
// encode-once fan-out on the binary path.
package transport

import (
	"errors"

	"groupcast/internal/wire"
)

// Transport moves wire messages between nodes. Implementations must be safe
// for concurrent Send calls; Recv returns a single channel owned by the
// transport, closed by Close.
type Transport interface {
	// Addr returns this endpoint's stable address.
	Addr() string
	// Send delivers msg to the endpoint at addr (asynchronously; delivery is
	// best-effort and errors indicate immediate local failure only).
	Send(addr string, msg wire.Message) error
	// Recv is the stream of inbound messages.
	Recv() <-chan wire.Message
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// Errors shared by transports.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown destination")
	// ErrUnreachable reports a destination behind a hard fault — crashed or
	// on the far side of a partition — where a real transport would fail the
	// connection rather than silently lose the message. Probabilistic loss
	// stays silent (lost on the wire, as on UDP).
	ErrUnreachable = errors.New("transport: destination unreachable")
)

// MultiSender is implemented by transports that can deliver one message to
// many destinations more cheaply than repeated Sends — the TCP transport
// encodes the frame once and writes the same bytes to every link. The node
// layer uses it for tree fan-out (publish and relay); callers fall back to
// a Send loop when the transport does not implement it. each, when non-nil,
// is called synchronously with every link's outcome, in order.
type MultiSender interface {
	SendMany(addrs []string, msg wire.Message, each func(addr string, err error))
}

// DropStats counts the messages an endpoint lost, split by cause. All
// counts are cumulative and monotonically increasing.
type DropStats struct {
	// InboxSheds counts inbound messages discarded because the endpoint's
	// inbox was full (backpressure becomes loss, like UDP).
	InboxSheds uint64
	// FabricDrops counts outbound messages the fabric or chaos layer lost
	// (injected loss, partitions, crash-stopped peers).
	FabricDrops uint64
	// Duplicates counts extra copies injected by the chaos layer.
	Duplicates uint64
}

// Total is the number of messages lost (duplicates are extra copies, not
// losses, and are excluded).
func (d DropStats) Total() uint64 { return d.InboxSheds + d.FabricDrops }

// DropCounter is implemented by transports that account for shed and
// dropped messages. The node layer surfaces these through its Stats so soak
// tests can assert on loss.
type DropCounter interface {
	DropStats() DropStats
}

// QueueReporter is implemented by transports whose inbound queue occupancy
// can be sampled. The node's metrics registry gauges and histograms feed on
// it (send-queue depth is a leading indicator of shed-induced loss).
type QueueReporter interface {
	// QueueDepth returns the number of inbound messages buffered and not yet
	// drained by the receiver.
	QueueDepth() int
}
