package peer

import (
	"math/rand"

	"groupcast/internal/sim"
)

// ArrivalProcess generates exponential inter-arrival times: the paper's
// overlay construction experiments have "peers join with intervals following
// an exponential distribution Expo(1s)".
type ArrivalProcess struct {
	meanMillis float64
	rng        *rand.Rand
}

// NewArrivalProcess returns a Poisson arrival process with the given mean
// inter-arrival time in milliseconds. Non-positive means default to 1000 ms
// (the paper's Expo(1s)).
func NewArrivalProcess(meanMillis float64, rng *rand.Rand) *ArrivalProcess {
	if meanMillis <= 0 {
		meanMillis = 1000
	}
	return &ArrivalProcess{meanMillis: meanMillis, rng: rng}
}

// Next draws the next inter-arrival gap in milliseconds.
func (p *ArrivalProcess) Next() sim.Time {
	return sim.Time(p.rng.ExpFloat64() * p.meanMillis)
}

// ScheduleJoins schedules n join events on the engine, spaced by the arrival
// process, calling join(i) for the i-th joining peer. It returns the arrival
// time of the last join.
func (p *ArrivalProcess) ScheduleJoins(e *sim.Engine, n int, join func(i int)) (sim.Time, error) {
	at := e.Now()
	for i := 0; i < n; i++ {
		at += p.Next()
		i := i
		if _, err := e.At(at, func(*sim.Engine, sim.Time) { join(i) }); err != nil {
			return at, err
		}
	}
	return at, nil
}

// ChurnEvent describes one churn action drawn by a ChurnProcess.
type ChurnEvent struct {
	At sim.Time
	// Graceful is true for a polite departure (the peer notifies its
	// neighbours) and false for a crash.
	Graceful bool
}

// ChurnProcess draws peer departures: exponential lifetimes with a
// configurable fraction of crashes versus graceful departures.
type ChurnProcess struct {
	meanLifetimeMillis float64
	crashFraction      float64
	rng                *rand.Rand
}

// NewChurnProcess returns a churn process with the given mean peer lifetime
// in milliseconds and fraction of departures that are crashes in [0,1].
func NewChurnProcess(meanLifetimeMillis, crashFraction float64, rng *rand.Rand) *ChurnProcess {
	if meanLifetimeMillis <= 0 {
		meanLifetimeMillis = 60_000
	}
	if crashFraction < 0 {
		crashFraction = 0
	}
	if crashFraction > 1 {
		crashFraction = 1
	}
	return &ChurnProcess{
		meanLifetimeMillis: meanLifetimeMillis,
		crashFraction:      crashFraction,
		rng:                rng,
	}
}

// NextDeparture draws the departure of a peer that joined at joinTime.
func (c *ChurnProcess) NextDeparture(joinTime sim.Time) ChurnEvent {
	life := sim.Time(c.rng.ExpFloat64() * c.meanLifetimeMillis)
	return ChurnEvent{
		At:       joinTime + life,
		Graceful: c.rng.Float64() >= c.crashFraction,
	}
}
