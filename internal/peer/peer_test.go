package peer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTable1SumsToOne(t *testing.T) {
	var sum float64
	for _, c := range Table1() {
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("Table 1 fractions sum to %v", sum)
	}
}

func TestNewCapacitySamplerValidation(t *testing.T) {
	cases := []struct {
		name    string
		classes []CapacityClass
		wantErr bool
	}{
		{"nil", nil, true},
		{"bad sum", []CapacityClass{{Level: 1, Fraction: 0.5}}, true},
		{"negative fraction", []CapacityClass{
			{Level: 1, Fraction: 1.5}, {Level: 2, Fraction: -0.5},
		}, true},
		{"zero level", []CapacityClass{{Level: 0, Fraction: 1}}, true},
		{"ok", Table1(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewCapacitySampler(c.classes)
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestSamplerMatchesTable1(t *testing.T) {
	s := MustTable1Sampler()
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	counts := make(map[Capacity]int)
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for _, c := range Table1() {
		got := float64(counts[c.Level]) / n
		// 3-sigma binomial tolerance plus floor for the rare class.
		tol := 3*math.Sqrt(c.Fraction*(1-c.Fraction)/n) + 1e-4
		if math.Abs(got-c.Fraction) > tol {
			t.Errorf("level %v: frequency %.5f, want %.5f ± %.5f", c.Level, got, c.Fraction, tol)
		}
	}
}

func TestSampleN(t *testing.T) {
	s := MustTable1Sampler()
	caps := s.SampleN(100, rand.New(rand.NewSource(2)))
	if len(caps) != 100 {
		t.Fatalf("len = %d", len(caps))
	}
	valid := map[Capacity]bool{1: true, 10: true, 100: true, 1000: true, 10000: true}
	for _, c := range caps {
		if !valid[c] {
			t.Fatalf("invalid capacity %v", c)
		}
	}
}

func TestClassesIsCopy(t *testing.T) {
	s := MustTable1Sampler()
	cl := s.Classes()
	cl[0].Level = 99999
	if s.Classes()[0].Level == 99999 {
		t.Fatal("Classes aliases internal state")
	}
}

func TestResourceLevels(t *testing.T) {
	caps := []Capacity{1, 10, 10, 100}
	r := ResourceLevels(caps)
	want := []float64{0, 0.25, 0.25, 0.75}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("r = %v, want %v", r, want)
		}
	}
	if ResourceLevels(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestResourceLevelsProperty(t *testing.T) {
	// Properties: r in [0,1); equal capacities get equal r; higher capacity
	// never gets lower r.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		caps := MustTable1Sampler().SampleN(int(n%50)+1, rng)
		r := ResourceLevels(caps)
		for i := range caps {
			if r[i] < 0 || r[i] >= 1 {
				return false
			}
			for j := range caps {
				if caps[i] == caps[j] && r[i] != r[j] {
					return false
				}
				if caps[i] > caps[j] && r[i] < r[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateResourceLevel(t *testing.T) {
	sample := []Capacity{1, 10, 100, 1000}
	if got := EstimateResourceLevel(100, sample); got != 0.5 {
		t.Fatalf("estimate = %v, want 0.5", got)
	}
	// Clamping.
	if got := EstimateResourceLevel(0.5, sample); got != 0.01 {
		t.Fatalf("low clamp = %v, want 0.01", got)
	}
	if got := EstimateResourceLevel(1e6, sample); got != 0.99 {
		t.Fatalf("high clamp = %v, want 0.99", got)
	}
	// Empty sample defaults to the median assumption.
	if got := EstimateResourceLevel(100, nil); got != 0.5 {
		t.Fatalf("empty-sample estimate = %v, want 0.5", got)
	}
}

func TestClampResourceLevel(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0.01}, {0, 0.01}, {0.5, 0.5}, {1, 0.99}, {2, 0.99},
	}
	for _, c := range cases {
		if got := ClampResourceLevel(c.in); got != c.want {
			t.Errorf("clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestZipfCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	caps := ZipfCapacities(10_000, 2.0, 1000, rng)
	if len(caps) != 10_000 {
		t.Fatalf("len = %d", len(caps))
	}
	ones := 0
	for _, c := range caps {
		if c < 1 || c > 1000 {
			t.Fatalf("capacity %v out of range", c)
		}
		if c == 1 {
			ones++
		}
	}
	// Zipf(2) puts most of the mass on rank 1.
	if frac := float64(ones) / 10_000; frac < 0.4 {
		t.Fatalf("rank-1 fraction %v too small for Zipf(2)", frac)
	}
	if ZipfCapacities(0, 2, 10, rng) != nil {
		t.Fatal("n=0 should give nil")
	}
	if ZipfCapacities(5, 2, 0, rng) != nil {
		t.Fatal("maxRank=0 should give nil")
	}
}

func TestUniformDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := UniformDistances(1000, 0, 400, rng)
	if len(ds) != 1000 {
		t.Fatalf("len = %d", len(ds))
	}
	for _, d := range ds {
		if d < 0 || d > 400 {
			t.Fatalf("distance %v out of range", d)
		}
	}
	if UniformDistances(0, 0, 1, rng) != nil {
		t.Fatal("n=0 should give nil")
	}
}
