package peer

import (
	"math"
	"math/rand"
	"testing"

	"groupcast/internal/sim"
)

func TestArrivalProcessMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewArrivalProcess(1000, rng)
	const n = 50_000
	var sum float64
	for i := 0; i < n; i++ {
		gap := p.Next()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		sum += float64(gap)
	}
	mean := sum / n
	if math.Abs(mean-1000) > 30 {
		t.Fatalf("mean gap = %v, want ≈1000", mean)
	}
}

func TestArrivalProcessDefaultsMean(t *testing.T) {
	p := NewArrivalProcess(-5, rand.New(rand.NewSource(2)))
	if p.meanMillis != 1000 {
		t.Fatalf("default mean = %v, want 1000", p.meanMillis)
	}
}

func TestScheduleJoins(t *testing.T) {
	e := sim.New()
	p := NewArrivalProcess(10, rand.New(rand.NewSource(3)))
	var joined []int
	last, err := p.ScheduleJoins(e, 20, func(i int) { joined = append(joined, i) })
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if len(joined) != 20 {
		t.Fatalf("joined %d, want 20", len(joined))
	}
	for i, j := range joined {
		if i != j {
			t.Fatalf("join order broken: %v", joined)
		}
	}
	if sim.Time(e.Now()) != last {
		t.Fatalf("clock %v != last arrival %v", e.Now(), last)
	}
}

func TestChurnProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewChurnProcess(5000, 0.3, rng)
	crashes := 0
	const n = 20_000
	var sumLife float64
	for i := 0; i < n; i++ {
		ev := c.NextDeparture(100)
		if ev.At < 100 {
			t.Fatalf("departure %v before join", ev.At)
		}
		sumLife += float64(ev.At - 100)
		if !ev.Graceful {
			crashes++
		}
	}
	if mean := sumLife / n; math.Abs(mean-5000) > 150 {
		t.Fatalf("mean lifetime %v, want ≈5000", mean)
	}
	if frac := float64(crashes) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("crash fraction %v, want ≈0.3", frac)
	}
}

func TestChurnProcessClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewChurnProcess(-1, -2, rng)
	if c.meanLifetimeMillis != 60_000 || c.crashFraction != 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c2 := NewChurnProcess(10, 7, rng)
	if c2.crashFraction != 1 {
		t.Fatalf("crash fraction not clamped: %v", c2.crashFraction)
	}
}
