// Package peer models the end hosts of a GroupCast deployment: their
// capacities (drawn from the Saroiu et al. measurement distribution the paper
// reproduces as Table 1), their resource levels, and churn processes.
package peer

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Capacity is a peer's node capacity in the paper's units: the number of
// 64 kbps connections the peer's access bandwidth can sustain.
type Capacity float64

// CapacityClass is one row of Table 1: a capacity level and the fraction of
// peers at that level.
type CapacityClass struct {
	Level    Capacity
	Fraction float64
}

// Table1 is the capacity distribution of peers used throughout the paper's
// evaluation (from the Saroiu et al. Gnutella measurement study [25]):
//
//	1x: 20%, 10x: 45%, 100x: 30%, 1000x: 4.9%, 10000x: 0.1%
func Table1() []CapacityClass {
	return []CapacityClass{
		{Level: 1, Fraction: 0.20},
		{Level: 10, Fraction: 0.45},
		{Level: 100, Fraction: 0.30},
		{Level: 1000, Fraction: 0.049},
		{Level: 10000, Fraction: 0.001},
	}
}

// CapacitySampler draws capacities from a categorical distribution.
type CapacitySampler struct {
	classes []CapacityClass
	cum     []float64
}

// NewCapacitySampler validates the classes (positive levels, fractions
// summing to 1 within 1e-9) and returns a sampler.
func NewCapacitySampler(classes []CapacityClass) (*CapacitySampler, error) {
	if len(classes) == 0 {
		return nil, errors.New("peer: no capacity classes")
	}
	var sum float64
	cum := make([]float64, len(classes))
	for i, c := range classes {
		if c.Level <= 0 {
			return nil, fmt.Errorf("peer: non-positive capacity level %v", c.Level)
		}
		if c.Fraction < 0 {
			return nil, fmt.Errorf("peer: negative fraction %v", c.Fraction)
		}
		sum += c.Fraction
		cum[i] = sum
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("peer: fractions sum to %v, want 1", sum)
	}
	cp := make([]CapacityClass, len(classes))
	copy(cp, classes)
	return &CapacitySampler{classes: cp, cum: cum}, nil
}

// MustTable1Sampler returns a sampler for Table 1; the distribution is a
// compile-time constant so failure is a programming error.
func MustTable1Sampler() *CapacitySampler {
	s, err := NewCapacitySampler(Table1())
	if err != nil {
		panic(err)
	}
	return s
}

// Sample draws one capacity.
func (s *CapacitySampler) Sample(rng *rand.Rand) Capacity {
	u := rng.Float64() * s.cum[len(s.cum)-1]
	idx := sort.SearchFloat64s(s.cum, u)
	if idx >= len(s.classes) {
		idx = len(s.classes) - 1
	}
	return s.classes[idx].Level
}

// SampleN draws n capacities.
func (s *CapacitySampler) SampleN(n int, rng *rand.Rand) []Capacity {
	out := make([]Capacity, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// Classes returns a copy of the sampler's distribution.
func (s *CapacitySampler) Classes() []CapacityClass {
	cp := make([]CapacityClass, len(s.classes))
	copy(cp, s.classes)
	return cp
}

// ResourceLevels computes each peer's exact resource level r_i: the fraction
// of peers with strictly less capacity (Section 3.1). The paper estimates
// this by sampling; the exact version is used by the simulator and as the
// ground truth in tests.
func ResourceLevels(caps []Capacity) []float64 {
	n := len(caps)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, n)
	for i, c := range caps {
		sorted[i] = float64(c)
	}
	sort.Float64s(sorted)
	out := make([]float64, n)
	for i, c := range caps {
		// Number of peers with capacity strictly below c.
		below := sort.SearchFloat64s(sorted, float64(c))
		out[i] = float64(below) / float64(n)
	}
	return out
}

// EstimateResourceLevel estimates r for a peer of capacity c by comparing
// against a sample of other peers' capacities, as a decentralized peer would
// (Section 3.1: "r_i can be estimated by sampling a few peers that are known
// to p_i"). The estimate is clamped to [0.01, 0.99] so the derived utility
// parameters α, β, γ stay well-defined.
func EstimateResourceLevel(c Capacity, sample []Capacity) float64 {
	if len(sample) == 0 {
		return 0.5
	}
	below := 0
	for _, s := range sample {
		if s < c {
			below++
		}
	}
	return ClampResourceLevel(float64(below) / float64(len(sample)))
}

// ClampResourceLevel restricts a resource level to [0.01, 0.99].
func ClampResourceLevel(r float64) float64 {
	if r < 0.01 {
		return 0.01
	}
	if r > 0.99 {
		return 0.99
	}
	return r
}
