package peer

import "math/rand"

// ZipfCapacities draws n capacities from a Zipf distribution with exponent s
// over ranks 1..maxRank (capacity = rank value, so most peers have small
// capacities and a few have large ones). The paper's Figures 1-6 use
// "a capacity value that follows a zipf distribution with parameter 2.0".
func ZipfCapacities(n int, s float64, maxRank int, rng *rand.Rand) []Capacity {
	if n <= 0 || maxRank < 1 {
		return nil
	}
	if s < 1 {
		s = 1
	}
	// rand.Zipf draws values in [0, imax] with P(k) ∝ (v+k)^-s.
	z := rand.NewZipf(rng, s, 1, uint64(maxRank-1))
	out := make([]Capacity, n)
	for i := range out {
		out[i] = Capacity(z.Uint64() + 1)
	}
	return out
}

// UniformDistances draws n distances from Unif(lo, hi) milliseconds, the
// candidate-distance model of Figures 1-6.
func UniformDistances(n int, lo, hi float64, rng *rand.Rand) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}
