package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// fuzzSeeds are valid encoded frames covering every message shape the
// protocol uses, so the fuzzer starts from deep inside the format instead of
// random bytes.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	peers := []PeerInfo{
		{Addr: "10.0.0.1:7001", Coord: []float64{1, 2, 3}, Capacity: 10},
		{Addr: "10.0.0.2:7002", Coord: []float64{-4, 5}, Capacity: 100, CoordErr: 0.25},
	}
	msgs := []Message{
		{},
		{Type: TProbe, From: peers[0], ReqID: 7},
		{Type: TProbeResp, From: peers[1], ReqID: 7, Neighbors: peers},
		{Type: TAdvertise, From: peers[0], GroupID: "g", Rendezvous: peers[1],
			TTL: 7, MsgID: 99, Mode: ReliableOrdered, Epoch: 3},
		{Type: TJoin, From: peers[0], GroupID: "g", Subscriber: peers[0],
			Rendezvous: peers[1], ReqID: 12, Path: []string{"a", "b"}},
		{Type: TPayload, From: peers[0], GroupID: "g", Seq: 42, Relay: peers[1],
			Data: bytes.Repeat([]byte("x"), 1024), TraceID: 5, Hops: 3,
			OriginAt: time.Unix(1700000000, 0), RelayedAt: time.Unix(1700000001, 0)},
		{Type: TBeacon, From: peers[1], GroupID: "g", Path: []string{"r"},
			Mode: Reliable, Backups: peers, Epoch: 2, Deputies: peers,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 2,
				Deputies: peers, HighWater: []DigestEntry{{Source: "s", High: 9}}}},
		{Type: TNack, From: peers[0], GroupID: "g", NackSource: "s",
			NackSeqs: []uint64{1, 2, 3}, Origin: peers[0], TTL: 4},
		{Type: TDigest, From: peers[0], GroupID: "g", Mode: Reliable,
			Digest: []DigestEntry{{Source: "a", High: 10}, {Source: "b", High: 20}}},
		{Type: THandoff, From: peers[0], GroupID: "g", Epoch: 5,
			Charter: Charter{GroupID: "g", Epoch: 5, Deputies: peers}},
	}
	out := make([][]byte, 0, len(msgs))
	for i := range msgs {
		b, err := EncodeMessage(&msgs[i])
		if err != nil {
			tb.Fatalf("seed %d: %v", i, err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeMessage holds the decoder to its contract: arbitrary input must
// either decode (and then re-encode/re-decode consistently) or return an
// error — never panic and never allocate past the frame cap.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	// Hostile prefixes: huge length, zero length, truncated header/body.
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<30)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// A successful decode must survive a round trip.
		enc, err := EncodeMessage(&msg)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		if _, err := DecodeMessage(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
