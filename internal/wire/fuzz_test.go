package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// fuzzSeeds are valid encoded frames covering every message shape the
// protocol uses, so the fuzzer starts from deep inside the format instead of
// random bytes.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	peers := []PeerInfo{
		{Addr: "10.0.0.1:7001", Coord: []float64{1, 2, 3}, Capacity: 10},
		{Addr: "10.0.0.2:7002", Coord: []float64{-4, 5}, Capacity: 100, CoordErr: 0.25},
	}
	msgs := []Message{
		{},
		{Type: TProbe, From: peers[0], ReqID: 7},
		{Type: TProbeResp, From: peers[1], ReqID: 7, Neighbors: peers},
		{Type: TAdvertise, From: peers[0], GroupID: "g", Rendezvous: peers[1],
			TTL: 7, MsgID: 99, Mode: ReliableOrdered, Epoch: 3},
		{Type: TJoin, From: peers[0], GroupID: "g", Subscriber: peers[0],
			Rendezvous: peers[1], ReqID: 12, Path: []string{"a", "b"}},
		{Type: TPayload, From: peers[0], GroupID: "g", Seq: 42, Relay: peers[1],
			Data: bytes.Repeat([]byte("x"), 1024), TraceID: 5, Hops: 3,
			OriginAt: time.Unix(1700000000, 0), RelayedAt: time.Unix(1700000001, 0)},
		{Type: TBeacon, From: peers[1], GroupID: "g", Path: []string{"r"},
			Mode: Reliable, Backups: peers, Epoch: 2, Deputies: peers,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 2,
				Deputies: peers, HighWater: []DigestEntry{{Source: "s", High: 9}}}},
		{Type: TNack, From: peers[0], GroupID: "g", NackSource: "s",
			NackSeqs: []uint64{1, 2, 3}, Origin: peers[0], TTL: 4},
		{Type: TDigest, From: peers[0], GroupID: "g", Mode: Reliable,
			Digest: []DigestEntry{{Source: "a", High: 10}, {Source: "b", High: 20}}},
		{Type: THandoff, From: peers[0], GroupID: "g", Epoch: 5,
			Charter: Charter{GroupID: "g", Epoch: 5, Deputies: peers}},
		{Type: TDhtFindNode, From: peers[0], ReqID: 21,
			Target: bytes.Repeat([]byte{0x5a}, 20)},
		{Type: TDhtFindValueResp, From: peers[1], ReqID: 22, GroupID: "g",
			Rendezvous: peers[0], Mode: Reliable, Epoch: 4, Neighbors: peers,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 4, Deputies: peers}},
		{Type: TDhtStore, From: peers[0], ReqID: 23, GroupID: "g",
			Rendezvous: peers[1], Mode: Reliable, Epoch: 4,
			Charter: Charter{GroupID: "g", Epoch: 4}},
		{Type: TTelemetry, From: peers[0],
			Health: []HealthDigest{
				{Addr: "10.0.0.1:7001", Epoch: 12, Utility: 0.5, Pressure: 0.25,
					P99Ms: 4.5, Inbox: 3, Delivered: 4100, Shed: 2, Degraded: true},
				{Addr: "10.0.0.2:7002", Epoch: 9, Delivered: 100}}},
		{Type: THeartbeat, From: peers[1], SentAt: time.Unix(1700000003, 0),
			Health: []HealthDigest{
				{Addr: "10.0.0.2:7002", Epoch: 9, Pressure: 1, Degraded: true}}},
	}
	// Both wire versions of every shape: the sniffing decoder must hold its
	// contract against hostile mutations of either layout.
	out := make([][]byte, 0, 2*len(msgs)+2)
	for i := range msgs {
		for _, version := range []int{VersionBinary, VersionGob} {
			b, err := EncodeMessageVersion(&msgs[i], version)
			if err != nil {
				tb.Fatalf("seed %d v%d: %v", i, version, err)
			}
			out = append(out, b)
		}
	}
	// Coalesced containers: beacon+digest (the real traffic pattern) and a
	// single-element container (what a timer flush of one message emits).
	var subs []byte
	var err error
	if subs, err = AppendSubMessage(subs, &msgs[6]); err != nil {
		tb.Fatal(err)
	}
	if subs, err = AppendSubMessage(subs, &msgs[8]); err != nil {
		tb.Fatal(err)
	}
	pair, err := AppendCoalesced(nil, subs)
	if err != nil {
		tb.Fatal(err)
	}
	out = append(out, pair)
	solo, err := AppendSubMessage(nil, &msgs[8])
	if err != nil {
		tb.Fatal(err)
	}
	solo, err = AppendCoalesced(nil, solo)
	if err != nil {
		tb.Fatal(err)
	}
	out = append(out, solo)
	return out
}

// FuzzDecodeMessage holds the decoder to its contract: arbitrary input must
// either decode (and then re-encode/re-decode consistently) or return an
// error — never panic and never allocate past the frame cap. It covers both
// wire versions and the coalesced container layout.
func FuzzDecodeMessage(f *testing.F) {
	seeds := fuzzSeeds(f)
	for _, seed := range seeds {
		f.Add(seed)
	}
	// Hostile prefixes: huge gob length, zero length, truncated header/body.
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<30)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5, 1, 2})
	// Hostile binary headers: bad magic, unknown version, oversized binary
	// length, coalesced container with a lying sub-length, empty container.
	f.Add([]byte{'G', 'X', 2, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{'G', 'C', 9, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{'G', 'C', 2, 1, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{'G', 'C', 2, 0xFF, 3, 0, 0, 0, 1, 200, 0})
	f.Add([]byte{'G', 'C', 2, 0xFF, 0, 0, 0, 0})
	// Truncations and oversized tails of a real coalesced frame.
	coalesced := seeds[len(seeds)-2]
	for _, cut := range []int{1, 4, 8, 9, len(coalesced) / 2, len(coalesced) - 1} {
		if cut < len(coalesced) {
			f.Add(coalesced[:cut])
		}
	}
	f.Add(append(append([]byte{}, coalesced...), 0xEE))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeFrames(data)
		if err != nil {
			return
		}
		// A successful decode must survive a round trip through the binary
		// encoder, message by message.
		for i := range msgs {
			enc, err := EncodeMessage(&msgs[i])
			if err != nil {
				t.Fatalf("re-encode of decoded message %d failed: %v", i, err)
			}
			back, err := DecodeMessage(enc)
			if err != nil {
				t.Fatalf("re-decode of message %d failed: %v", i, err)
			}
			if !msgEquivalent(&back, &msgs[i]) {
				t.Fatalf("round trip of message %d drifted:\n got %+v\nwant %+v",
					i, back, msgs[i])
			}
		}
	})
}
