// Binary wire codec (wire version 2): the hand-rolled hot-path encoding that
// replaced gob for payload relay, beacons, NACKs, and digests. Every frame
// starts with an 8-byte header —
//
//	offset 0: magic 'G' (0x47)
//	offset 1: magic 'C' (0x43)
//	offset 2: wire version (0x02)
//	offset 3: message type (0x00-0xFE; 0xFF marks a coalesced container)
//	offset 4: body length, uint32 little-endian (≤ MaxFrameSize)
//
// — followed by the body: a presence bitmap (uvarint; one bit per Message
// field, zero-valued fields omitted entirely) and the present fields in bit
// order, each with an explicit little-endian layout. Integers that vary in
// magnitude (sequence numbers, digest high-water marks, epochs, lengths) are
// varint-packed; floats and timestamps are fixed 8-byte little-endian.
// docs/WIRE.md is the authoritative byte-level specification; the golden
// vector tests in golden_test.go pin the layout of every message type.
//
// The codec is allocation-frugal by construction: encoding appends into a
// caller-supplied (or pooled) byte slice and decoding reads fields straight
// out of the frame, interning repeated strings (addresses, group IDs) per
// reader so a steady-state relay hop allocates only the payload slice and
// coordinate vectors. Unlike gob, frames are stateless — any frame decodes
// in isolation — which is what lets the TCP transport encode a fan-out
// message once and write the same bytes to every link (MultiSender), and
// lets small per-link control messages share one coalesced container frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Wire versions. A FrameReader accepts both on one stream by sniffing each
// frame's leading bytes; writers speak exactly one.
const (
	// VersionGob is the PR 5 codec: a 4-byte big-endian length prefix
	// followed by one gob-encoded Message. Kept for one release so mixed
	// clusters can upgrade node by node.
	VersionGob = 1
	// VersionBinary is the hand-rolled binary codec described above.
	VersionBinary = 2
	// DefaultVersion is what new writers speak.
	DefaultVersion = VersionBinary
)

// Binary frame constants.
const (
	magic0 = 'G'
	magic1 = 'C'
	// binHeaderLen is the fixed binary frame header size.
	binHeaderLen = 8
	// coalescedType is the header type byte of a coalesced container frame:
	// a sequence of [type u8][body-length uvarint][body] sub-messages.
	coalescedType = 0xFF
	// maxCoordDims bounds a PeerInfo coordinate vector (stored as one byte).
	maxCoordDims = 255
)

// Binary codec errors.
var (
	// ErrBadVersion reports a binary frame whose version byte is not one this
	// decoder speaks. The stream is poisoned; drop the connection.
	ErrBadVersion = errors.New("wire: unsupported wire version")
	// ErrBadMessage reports a binary body that does not parse: truncated
	// fields, unknown presence bits, counts exceeding the frame, or trailing
	// bytes inside the body.
	ErrBadMessage = errors.New("wire: malformed binary message")
	// ErrUnencodable reports a Message the binary layout cannot carry (a
	// type outside 0-254 or a coordinate vector longer than 255 dims).
	ErrUnencodable = errors.New("wire: message not encodable in binary layout")
)

// ParseVersion maps a wire version name (flag value) to its number.
func ParseVersion(s string) (int, error) {
	switch s {
	case "", "binary", "2":
		return VersionBinary, nil
	case "gob", "1":
		return VersionGob, nil
	}
	return 0, fmt.Errorf("wire: unknown wire version %q (want \"binary\" or \"gob\")", s)
}

// Presence bitmap bits, in field order. A set bit means the field follows in
// the body; a clear bit decodes as the zero value. Bits at or above
// fieldCount are a decode error (layout changes bump the version byte).
const (
	bitFrom = iota
	bitReqID
	bitNeighbors
	bitGroupID
	bitRendezvous
	bitTTL
	bitOrigin
	bitSubscriber
	bitMsgID
	bitData
	bitSeq
	bitRelay
	bitMode
	bitNackSource
	bitNackSeqs
	bitDigest
	bitEpoch
	bitDeputies
	bitCharter
	bitSentAt
	bitTraceID
	bitHops
	bitOriginAt
	bitRelayedAt
	bitPath
	bitBackups
	bitTarget
	bitHealth
	fieldCount
)

// encBufPool recycles encode scratch buffers across standalone encodes and
// transport fan-outs. Buffers grow to fit and return to the pool at whatever
// capacity they reached (bounded by MaxFrameSize).
var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetEncodeBuffer borrows a zero-length scratch buffer from the codec's
// pool. Pass the (possibly re-allocated) slice back with PutEncodeBuffer
// when the encoded bytes have been flushed to the wire.
func GetEncodeBuffer() []byte { return (*encBufPool.Get().(*[]byte))[:0] }

// PutEncodeBuffer returns a buffer borrowed from GetEncodeBuffer.
func PutEncodeBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > MaxFrameSize {
		return
	}
	b = b[:0]
	encBufPool.Put(&b)
}

// --- primitive append helpers -------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendSvarint zigzag-encodes a signed integer (TTL, hop counts).
func appendSvarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendByteSlice(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// appendTime encodes a non-zero time as its Unix nanosecond count, fixed
// 8-byte little-endian. Times outside the Unix-nano range (years ≲1678 or
// ≳2262) are not representable; the protocol only carries recent wall-clock
// stamps.
func appendTime(dst []byte, t time.Time) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(t.UnixNano()))
}

func appendPeer(dst []byte, p *PeerInfo) ([]byte, error) {
	if len(p.Coord) > maxCoordDims {
		return dst, fmt.Errorf("%w: %d coordinate dims", ErrUnencodable, len(p.Coord))
	}
	dst = appendString(dst, p.Addr)
	dst = append(dst, byte(len(p.Coord)))
	for _, c := range p.Coord {
		dst = appendF64(dst, c)
	}
	dst = appendF64(dst, p.Capacity)
	dst = appendF64(dst, p.CoordErr)
	return dst, nil
}

func appendPeers(dst []byte, ps []PeerInfo) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	var err error
	for i := range ps {
		if dst, err = appendPeer(dst, &ps[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// appendDigestEntries varint-packs a high-water map: count, then per entry
// the source address and its high-water mark.
func appendDigestEntries(dst []byte, es []DigestEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(es)))
	for i := range es {
		dst = appendString(dst, es[i].Source)
		dst = binary.AppendUvarint(dst, es[i].High)
	}
	return dst
}

// appendHealth encodes a health-digest list: count, then per digest the
// reporter address, epoch, the three float summaries, the three varint
// counters, and a flags byte (bit 0 = degraded).
func appendHealth(dst []byte, hs []HealthDigest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(hs)))
	for i := range hs {
		h := &hs[i]
		dst = appendString(dst, h.Addr)
		dst = binary.AppendUvarint(dst, h.Epoch)
		dst = appendF64(dst, h.Utility)
		dst = appendF64(dst, h.Pressure)
		dst = appendF64(dst, h.P99Ms)
		dst = binary.AppendUvarint(dst, h.Inbox)
		dst = binary.AppendUvarint(dst, h.Delivered)
		dst = binary.AppendUvarint(dst, h.Shed)
		var flags byte
		if h.Degraded {
			flags |= 1
		}
		dst = append(dst, flags)
	}
	return dst
}

func appendCharter(dst []byte, c *Charter) ([]byte, error) {
	dst = appendString(dst, c.GroupID)
	dst = append(dst, byte(c.Mode))
	dst = binary.AppendUvarint(dst, c.Epoch)
	var err error
	if dst, err = appendPeers(dst, c.Deputies); err != nil {
		return dst, err
	}
	return appendDigestEntries(dst, c.HighWater), nil
}

// --- zero checks (presence bitmap) --------------------------------------

func peerIsZero(p *PeerInfo) bool {
	return p.Addr == "" && len(p.Coord) == 0 && p.Capacity == 0 && p.CoordErr == 0
}

func charterIsZero(c *Charter) bool {
	return c.GroupID == "" && c.Mode == 0 && c.Epoch == 0 &&
		len(c.Deputies) == 0 && len(c.HighWater) == 0
}

// presence computes the bitmap of non-zero fields.
func presence(msg *Message) uint64 {
	var bits uint64
	set := func(bit int, present bool) {
		if present {
			bits |= 1 << bit
		}
	}
	set(bitFrom, !peerIsZero(&msg.From))
	set(bitReqID, msg.ReqID != 0)
	set(bitNeighbors, len(msg.Neighbors) > 0)
	set(bitGroupID, msg.GroupID != "")
	set(bitRendezvous, !peerIsZero(&msg.Rendezvous))
	set(bitTTL, msg.TTL != 0)
	set(bitOrigin, !peerIsZero(&msg.Origin))
	set(bitSubscriber, !peerIsZero(&msg.Subscriber))
	set(bitMsgID, msg.MsgID != 0)
	set(bitData, len(msg.Data) > 0)
	set(bitSeq, msg.Seq != 0)
	set(bitRelay, !peerIsZero(&msg.Relay))
	set(bitMode, msg.Mode != 0)
	set(bitNackSource, msg.NackSource != "")
	set(bitNackSeqs, len(msg.NackSeqs) > 0)
	set(bitDigest, len(msg.Digest) > 0)
	set(bitEpoch, msg.Epoch != 0)
	set(bitDeputies, len(msg.Deputies) > 0)
	set(bitCharter, !charterIsZero(&msg.Charter))
	set(bitSentAt, !msg.SentAt.IsZero())
	set(bitTraceID, msg.TraceID != 0)
	set(bitHops, msg.Hops != 0)
	set(bitOriginAt, !msg.OriginAt.IsZero())
	set(bitRelayedAt, !msg.RelayedAt.IsZero())
	set(bitPath, len(msg.Path) > 0)
	set(bitBackups, len(msg.Backups) > 0)
	set(bitTarget, len(msg.Target) > 0)
	set(bitHealth, len(msg.Health) > 0)
	return bits
}

// appendBody encodes the presence bitmap and the present fields.
func appendBody(dst []byte, msg *Message) ([]byte, error) {
	bits := presence(msg)
	dst = binary.AppendUvarint(dst, bits)
	var err error
	if bits&(1<<bitFrom) != 0 {
		if dst, err = appendPeer(dst, &msg.From); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitReqID) != 0 {
		dst = binary.AppendUvarint(dst, msg.ReqID)
	}
	if bits&(1<<bitNeighbors) != 0 {
		if dst, err = appendPeers(dst, msg.Neighbors); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitGroupID) != 0 {
		dst = appendString(dst, msg.GroupID)
	}
	if bits&(1<<bitRendezvous) != 0 {
		if dst, err = appendPeer(dst, &msg.Rendezvous); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitTTL) != 0 {
		dst = appendSvarint(dst, int64(msg.TTL))
	}
	if bits&(1<<bitOrigin) != 0 {
		if dst, err = appendPeer(dst, &msg.Origin); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitSubscriber) != 0 {
		if dst, err = appendPeer(dst, &msg.Subscriber); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitMsgID) != 0 {
		dst = binary.AppendUvarint(dst, msg.MsgID)
	}
	if bits&(1<<bitData) != 0 {
		dst = appendByteSlice(dst, msg.Data)
	}
	if bits&(1<<bitSeq) != 0 {
		dst = binary.AppendUvarint(dst, msg.Seq)
	}
	if bits&(1<<bitRelay) != 0 {
		if dst, err = appendPeer(dst, &msg.Relay); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitMode) != 0 {
		dst = append(dst, byte(msg.Mode))
	}
	if bits&(1<<bitNackSource) != 0 {
		dst = appendString(dst, msg.NackSource)
	}
	if bits&(1<<bitNackSeqs) != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(msg.NackSeqs)))
		for _, s := range msg.NackSeqs {
			dst = binary.AppendUvarint(dst, s)
		}
	}
	if bits&(1<<bitDigest) != 0 {
		dst = appendDigestEntries(dst, msg.Digest)
	}
	if bits&(1<<bitEpoch) != 0 {
		dst = binary.AppendUvarint(dst, msg.Epoch)
	}
	if bits&(1<<bitDeputies) != 0 {
		if dst, err = appendPeers(dst, msg.Deputies); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitCharter) != 0 {
		if dst, err = appendCharter(dst, &msg.Charter); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitSentAt) != 0 {
		dst = appendTime(dst, msg.SentAt)
	}
	if bits&(1<<bitTraceID) != 0 {
		dst = binary.AppendUvarint(dst, msg.TraceID)
	}
	if bits&(1<<bitHops) != 0 {
		dst = appendSvarint(dst, int64(msg.Hops))
	}
	if bits&(1<<bitOriginAt) != 0 {
		dst = appendTime(dst, msg.OriginAt)
	}
	if bits&(1<<bitRelayedAt) != 0 {
		dst = appendTime(dst, msg.RelayedAt)
	}
	if bits&(1<<bitPath) != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(msg.Path)))
		for _, p := range msg.Path {
			dst = appendString(dst, p)
		}
	}
	if bits&(1<<bitBackups) != 0 {
		if dst, err = appendPeers(dst, msg.Backups); err != nil {
			return dst, err
		}
	}
	if bits&(1<<bitTarget) != 0 {
		dst = appendByteSlice(dst, msg.Target)
	}
	if bits&(1<<bitHealth) != 0 {
		dst = appendHealth(dst, msg.Health)
	}
	return dst, nil
}

// AppendMessage appends one standalone binary frame (header + body) for msg
// to dst and returns the extended slice. dst may be nil or a pooled buffer;
// the message is not retained.
func AppendMessage(dst []byte, msg *Message) ([]byte, error) {
	if msg.Type < 0 || msg.Type >= coalescedType {
		return dst, fmt.Errorf("%w: type %d", ErrUnencodable, int(msg.Type))
	}
	start := len(dst)
	dst = append(dst, magic0, magic1, VersionBinary, byte(msg.Type), 0, 0, 0, 0)
	dst, err := appendBody(dst, msg)
	if err != nil {
		return dst[:start], err
	}
	body := len(dst) - start - binHeaderLen
	if body > MaxFrameSize {
		return dst[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(dst[start+4:start+8], uint32(body))
	return dst, nil
}

// AppendSubMessage appends msg as a coalesced-container sub-message
// ([type u8][body-length uvarint][body]) to dst. Sub-messages carry no
// header of their own; the container frame's header covers them.
func AppendSubMessage(dst []byte, msg *Message) ([]byte, error) {
	if msg.Type < 0 || msg.Type >= coalescedType {
		return dst, fmt.Errorf("%w: type %d", ErrUnencodable, int(msg.Type))
	}
	scratch := GetEncodeBuffer()
	body, err := appendBody(scratch, msg)
	if err != nil {
		PutEncodeBuffer(scratch)
		return dst, err
	}
	dst = append(dst, byte(msg.Type))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	PutEncodeBuffer(body)
	return dst, nil
}

// AppendCoalesced wraps already-encoded sub-messages (a concatenation built
// by AppendSubMessage) in one container frame and appends it to dst.
func AppendCoalesced(dst, subframes []byte) ([]byte, error) {
	if len(subframes) == 0 {
		return dst, ErrFrameEmpty
	}
	if len(subframes) > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = append(dst, magic0, magic1, VersionBinary, coalescedType, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[len(dst)-4:], uint32(len(subframes)))
	return append(dst, subframes...), nil
}

// --- decoding ------------------------------------------------------------

// internTable deduplicates the short strings a connection repeats endlessly
// (peer addresses, group IDs) so steady-state decoding stops allocating
// them. Bounded; overflow simply falls back to fresh allocations.
type internTable struct {
	m map[string]string
}

const (
	internMaxLen     = 64   // only short strings are worth interning
	internMaxEntries = 4096 // per-reader cap on distinct strings
)

func (it *internTable) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	if it.m == nil {
		it.m = make(map[string]string)
	}
	if s, ok := it.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(it.m) < internMaxEntries {
		it.m[s] = s
	}
	return s
}

// bcursor reads primitive values out of one frame body, tracking a sticky
// error so call sites stay linear.
type bcursor struct {
	data   []byte
	off    int
	intern *internTable
	err    error
}

func (c *bcursor) fail() {
	if c.err == nil {
		c.err = ErrBadMessage
	}
}

func (c *bcursor) u8() byte {
	if c.err != nil || c.off >= len(c.data) {
		c.fail()
		return 0
	}
	b := c.data[c.off]
	c.off++
	return b
}

func (c *bcursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *bcursor) svarint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

// take returns the next n bytes of the frame without copying.
func (c *bcursor) take(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.data) || c.off+n < 0 {
		c.fail()
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *bcursor) str() string {
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.data)-c.off) {
		c.fail()
		return ""
	}
	b := c.take(int(n))
	if c.intern != nil {
		return c.intern.get(b)
	}
	return string(b)
}

// byteSlice copies the length-prefixed bytes out of the frame: payload data
// outlives the frame buffer (it flows into receive windows and relay
// caches), so it must own its backing array.
func (c *bcursor) byteSlice() []byte {
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.data)-c.off) {
		c.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, c.take(int(n)))
	return out
}

func (c *bcursor) f64() float64 {
	b := c.take(8)
	if c.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (c *bcursor) time() time.Time {
	b := c.take(8)
	if c.err != nil {
		return time.Time{}
	}
	return time.Unix(0, int64(binary.LittleEndian.Uint64(b)))
}

func (c *bcursor) peer(p *PeerInfo) {
	p.Addr = c.str()
	n := int(c.u8())
	if c.err != nil {
		return
	}
	if n > 0 {
		if 8*n > len(c.data)-c.off {
			c.fail()
			return
		}
		p.Coord = make([]float64, n)
		for i := range p.Coord {
			p.Coord[i] = c.f64()
		}
	} else {
		p.Coord = nil
	}
	p.Capacity = c.f64()
	p.CoordErr = c.f64()
}

func (c *bcursor) peers() []PeerInfo {
	n := c.uvarint()
	if c.err != nil || n == 0 {
		return nil
	}
	// Each encoded peer is ≥ 18 bytes; a count claiming more than the
	// remaining frame is hostile.
	if n > uint64(len(c.data)-c.off)/18+1 {
		c.fail()
		return nil
	}
	ps := make([]PeerInfo, n)
	for i := range ps {
		c.peer(&ps[i])
		if c.err != nil {
			return nil
		}
	}
	return ps
}

func (c *bcursor) digestEntries() []DigestEntry {
	n := c.uvarint()
	if c.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(c.data)-c.off)/2+1 {
		c.fail()
		return nil
	}
	es := make([]DigestEntry, n)
	for i := range es {
		es[i].Source = c.str()
		es[i].High = c.uvarint()
		if c.err != nil {
			return nil
		}
	}
	return es
}

func (c *bcursor) health() []HealthDigest {
	n := c.uvarint()
	if c.err != nil || n == 0 {
		return nil
	}
	// Each encoded digest is ≥ 29 bytes (3 fixed floats + flags + minimal
	// varints); a count claiming more than the remaining frame is hostile.
	if n > uint64(len(c.data)-c.off)/29+1 {
		c.fail()
		return nil
	}
	hs := make([]HealthDigest, n)
	for i := range hs {
		h := &hs[i]
		h.Addr = c.str()
		h.Epoch = c.uvarint()
		h.Utility = c.f64()
		h.Pressure = c.f64()
		h.P99Ms = c.f64()
		h.Inbox = c.uvarint()
		h.Delivered = c.uvarint()
		h.Shed = c.uvarint()
		h.Degraded = c.u8()&1 != 0
		if c.err != nil {
			return nil
		}
	}
	return hs
}

func (c *bcursor) charter(ch *Charter) {
	ch.GroupID = c.str()
	ch.Mode = DeliveryMode(c.u8())
	ch.Epoch = c.uvarint()
	ch.Deputies = c.peers()
	ch.HighWater = c.digestEntries()
}

// decodeBody parses one binary body into msg (which is fully overwritten).
// The body must be consumed exactly; trailing bytes are an error.
func decodeBody(body []byte, typ byte, msg *Message, intern *internTable) error {
	*msg = Message{Type: Type(typ)}
	c := bcursor{data: body, intern: intern}
	bits := c.uvarint()
	if c.err != nil {
		return c.err
	}
	if bits>>fieldCount != 0 {
		return fmt.Errorf("%w: unknown field bits %#x", ErrBadMessage, bits)
	}
	if bits&(1<<bitFrom) != 0 {
		c.peer(&msg.From)
	}
	if bits&(1<<bitReqID) != 0 {
		msg.ReqID = c.uvarint()
	}
	if bits&(1<<bitNeighbors) != 0 {
		msg.Neighbors = c.peers()
	}
	if bits&(1<<bitGroupID) != 0 {
		msg.GroupID = c.str()
	}
	if bits&(1<<bitRendezvous) != 0 {
		c.peer(&msg.Rendezvous)
	}
	if bits&(1<<bitTTL) != 0 {
		msg.TTL = int(c.svarint())
	}
	if bits&(1<<bitOrigin) != 0 {
		c.peer(&msg.Origin)
	}
	if bits&(1<<bitSubscriber) != 0 {
		c.peer(&msg.Subscriber)
	}
	if bits&(1<<bitMsgID) != 0 {
		msg.MsgID = c.uvarint()
	}
	if bits&(1<<bitData) != 0 {
		msg.Data = c.byteSlice()
	}
	if bits&(1<<bitSeq) != 0 {
		msg.Seq = c.uvarint()
	}
	if bits&(1<<bitRelay) != 0 {
		c.peer(&msg.Relay)
	}
	if bits&(1<<bitMode) != 0 {
		msg.Mode = DeliveryMode(c.u8())
	}
	if bits&(1<<bitNackSource) != 0 {
		msg.NackSource = c.str()
	}
	if bits&(1<<bitNackSeqs) != 0 {
		n := c.uvarint()
		if c.err == nil && n > 0 {
			if n > uint64(len(c.data)-c.off)+1 {
				c.fail()
			} else {
				msg.NackSeqs = make([]uint64, n)
				for i := range msg.NackSeqs {
					msg.NackSeqs[i] = c.uvarint()
				}
			}
		}
	}
	if bits&(1<<bitDigest) != 0 {
		msg.Digest = c.digestEntries()
	}
	if bits&(1<<bitEpoch) != 0 {
		msg.Epoch = c.uvarint()
	}
	if bits&(1<<bitDeputies) != 0 {
		msg.Deputies = c.peers()
	}
	if bits&(1<<bitCharter) != 0 {
		c.charter(&msg.Charter)
	}
	if bits&(1<<bitSentAt) != 0 {
		msg.SentAt = c.time()
	}
	if bits&(1<<bitTraceID) != 0 {
		msg.TraceID = c.uvarint()
	}
	if bits&(1<<bitHops) != 0 {
		msg.Hops = int(c.svarint())
	}
	if bits&(1<<bitOriginAt) != 0 {
		msg.OriginAt = c.time()
	}
	if bits&(1<<bitRelayedAt) != 0 {
		msg.RelayedAt = c.time()
	}
	if bits&(1<<bitPath) != 0 {
		n := c.uvarint()
		if c.err == nil && n > 0 {
			if n > uint64(len(c.data)-c.off)+1 {
				c.fail()
			} else {
				msg.Path = make([]string, n)
				for i := range msg.Path {
					msg.Path[i] = c.str()
				}
			}
		}
	}
	if bits&(1<<bitBackups) != 0 {
		msg.Backups = c.peers()
	}
	if bits&(1<<bitTarget) != 0 {
		msg.Target = c.byteSlice()
	}
	if bits&(1<<bitHealth) != 0 {
		msg.Health = c.health()
	}
	if c.err != nil {
		*msg = Message{}
		return c.err
	}
	if c.off != len(c.data) {
		*msg = Message{}
		return fmt.Errorf("%w: %d trailing bytes in body", ErrBadMessage, len(c.data)-c.off)
	}
	return nil
}

// decodeSubMessages parses a coalesced container body, appending each
// sub-message to out. Memory is bounded by the (already size-capped) frame.
func decodeSubMessages(body []byte, out []Message, intern *internTable) ([]Message, error) {
	for off := 0; off < len(body); {
		typ := body[off]
		off++
		if typ == coalescedType {
			return nil, fmt.Errorf("%w: nested coalesced frame", ErrBadMessage)
		}
		n, w := binary.Uvarint(body[off:])
		if w <= 0 || n > uint64(len(body)-off-w) {
			return nil, fmt.Errorf("%w: bad sub-message length", ErrBadMessage)
		}
		off += w
		var msg Message
		if err := decodeBody(body[off:off+int(n)], typ, &msg, intern); err != nil {
			return nil, err
		}
		off += int(n)
		out = append(out, msg)
	}
	if len(out) == 0 {
		return nil, ErrFrameEmpty
	}
	return out, nil
}
