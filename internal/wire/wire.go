// Package wire defines the message vocabulary of the live GroupCast runtime
// (internal/node): peer identification, probing, connection setup, epoch
// heartbeats, group advertisement, subscription, and payload dissemination.
// Messages are transport-agnostic values; the TCP transport frames them with
// the dual-version codec in codec.go — a hand-rolled binary layout
// (binary.go, wire version 2, the default) with a legacy gob encoding (wire
// version 1) kept for one release of mixed-cluster compatibility. The
// byte-level format is specified in docs/WIRE.md.
package wire

import (
	"fmt"
	"time"
)

// Type enumerates the protocol messages.
type Type int

// Protocol message types.
const (
	TProbe Type = iota + 1
	TProbeResp
	TConnect      // forward-connection notification (i adds k as out-neighbour)
	TBackConnect  // back-connection request (k decides with PB_k)
	TBackAccept   // back-connection accepted
	TAdvertise    // group advertisement (SSA/NSSA)
	TJoin         // subscription travelling a reverse path
	TJoinAck      // parent's confirmation of a direct join
	TSearch       // ripple search for an advertisement holder
	TSearchHit    // search response naming an access point
	TPayload      // group communication payload
	TBeacon       // rendezvous-rooted tree heartbeat flowing down the tree
	TLeave        // graceful neighbour departure
	THeartbeat    // epoch keepalive
	THeartbeatAck // keepalive response
	TNack         // retransmission request for missing payload sequences
	TDigest       // per-source high-water digest (anti-entropy heartbeat)
	THandoff      // graceful root departure handing the charter to a deputy

	// DHT discovery plane (internal/dht): Kademlia-style iterative lookups
	// over the same transport, replacing the ripple-search flood for group
	// discovery at scale.
	TDhtFindNode      // request the k closest known contacts to a 160-bit target
	TDhtFindNodeResp  // closest-contact reply (Neighbors)
	TDhtFindValue     // request a group's charter record, or closer contacts
	TDhtFindValueResp // record hit (Rendezvous/Epoch/Charter) or contact miss (Neighbors)
	TDhtStore         // replicate a group record onto one of the k closest nodes
	TDhtStoreAck      // store acknowledgement echoing the retained epoch

	// TTelemetry is a standalone health-digest exchange (internal/telemetry):
	// the same Health payload that piggybacks on heartbeats and beacons, sent
	// on its own when a node has digests to gossip but no heartbeat due (or a
	// collector asks for a push). Control class, never shed by the priority
	// inbox before best-effort traffic.
	TTelemetry

	// TRecoveryState frames never cross the network: they are the on-disk
	// record format of the crash-restart state file (internal/recovery),
	// reusing the wire codec so the durable layout rides the same versioning
	// and fuzzing the protocol does. One identity frame (From, Epoch,
	// Neighbors = DHT contact snapshot) followed by one frame per group
	// (GroupID, Mode, Epoch, Rendezvous, Deputies, Charter, Seq = publish
	// high-water, Digest = per-source receive high-waters, TTL = role flags).
	TRecoveryState
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TProbe:
		return "probe"
	case TProbeResp:
		return "probe-resp"
	case TConnect:
		return "connect"
	case TBackConnect:
		return "back-connect"
	case TBackAccept:
		return "back-accept"
	case TAdvertise:
		return "advertise"
	case TJoin:
		return "join"
	case TJoinAck:
		return "join-ack"
	case TSearch:
		return "search"
	case TSearchHit:
		return "search-hit"
	case TPayload:
		return "payload"
	case TBeacon:
		return "beacon"
	case TLeave:
		return "leave"
	case THeartbeat:
		return "heartbeat"
	case THeartbeatAck:
		return "heartbeat-ack"
	case TNack:
		return "nack"
	case TDigest:
		return "digest"
	case THandoff:
		return "handoff"
	case TDhtFindNode:
		return "dht-find-node"
	case TDhtFindNodeResp:
		return "dht-find-node-resp"
	case TDhtFindValue:
		return "dht-find-value"
	case TDhtFindValueResp:
		return "dht-find-value-resp"
	case TDhtStore:
		return "dht-store"
	case TDhtStoreAck:
		return "dht-store-ack"
	case TTelemetry:
		return "telemetry"
	case TRecoveryState:
		return "recovery-state"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// DeliveryMode selects a group's data-plane reliability level. The mode is
// a group property chosen by the rendezvous at creation time; members learn
// it from advertisements, join acks, and beacons.
type DeliveryMode uint8

// Delivery modes, weakest first.
const (
	// BestEffort is fire-and-forget tree flooding: payloads lost on the
	// wire are gone, duplicates are filtered, no ordering is promised.
	BestEffort DeliveryMode = iota
	// Reliable adds per-source sequencing with NACK retransmission and
	// digest anti-entropy: every payload is eventually delivered (within
	// the recovery window) but may arrive out of order.
	Reliable
	// ReliableOrdered additionally releases each source's payloads to the
	// application in publish order (per-source FIFO).
	ReliableOrdered
)

// String names the delivery mode.
func (m DeliveryMode) String() string {
	switch m {
	case BestEffort:
		return "best-effort"
	case Reliable:
		return "reliable"
	case ReliableOrdered:
		return "reliable-ordered"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseDeliveryMode maps a mode name (as printed by String) back to the
// mode.
func ParseDeliveryMode(s string) (DeliveryMode, error) {
	switch s {
	case "best-effort", "besteffort", "":
		return BestEffort, nil
	case "reliable":
		return Reliable, nil
	case "reliable-ordered", "ordered":
		return ReliableOrdered, nil
	}
	return BestEffort, fmt.Errorf("wire: unknown delivery mode %q", s)
}

// DigestEntry is one source's high-water mark in a TDigest message: the
// sender has seen (or published) sequences up to High from Source.
type DigestEntry struct {
	Source string
	High   uint64
}

// Charter is the compact group descriptor a rendezvous replicates to its
// deputies so the group survives the root: identity, delivery mode, the
// root's succession epoch, the ordered deputy roster (highest Eq. 6 utility
// first), and the per-source sequence high-water marks at replication time.
// A deputy that promotes itself seeds its receive windows from HighWater, so
// publishes in flight at the crash recover through the normal NACK/digest
// path against the new root. A zero Epoch means "no charter".
type Charter struct {
	GroupID string
	Mode    DeliveryMode
	// Epoch is the issuing root's succession epoch: 1 at group creation,
	// incremented by every promotion. Conflicting roots after a partition
	// heal are resolved by epoch comparison (higher wins; ties go to the
	// lexicographically lower address).
	Epoch uint64
	// Deputies is the ordered succession roster. Deputy #i promotes itself
	// after suspectEpochs+i silent beacon epochs; the first live deputy wins.
	Deputies []PeerInfo
	// HighWater lists per-source publish high-water marks, sorted by source.
	HighWater []DigestEntry
}

// HealthDigest is one node's compact self-report for the gossiped fleet
// view (internal/telemetry): identity, the reporter's beacon epoch, the
// utility/pressure/latency summary of its local state, and the cumulative
// delivery/shed counters the SLO rules derive ratios from. Digests ride
// heartbeats, beacons, and TTelemetry messages; each is ~40-60 bytes on the
// wire (see docs/WIRE.md, Health digest layout).
type HealthDigest struct {
	// Addr is the reporting node (digests are relayed, so the message sender
	// and the digest subject differ on gossiped entries).
	Addr string `json:"addr"`
	// Epoch is the reporter's own beacon-epoch counter at sampling time.
	// Receivers keep only the highest epoch per node, which makes the fleet
	// view eventually consistent without any ordering on the gossip paths.
	Epoch uint64 `json:"epoch"`
	// Utility is the mean Eq. 6 selection preference across the reporter's
	// tree links (0 when it has none).
	Utility float64 `json:"utility"`
	// Pressure is the overload controller's last pressure sample in [0, 1].
	Pressure float64 `json:"pressure"`
	// P99Ms is the p99 publish→deliver latency in milliseconds.
	P99Ms float64 `json:"p99_ms"`
	// Inbox is the inbound queue depth at sampling time.
	Inbox uint64 `json:"inbox"`
	// Delivered counts payloads handed to the application (cumulative).
	Delivered uint64 `json:"delivered"`
	// Shed counts work dropped under pressure: transport inbox sheds plus
	// admission-control rejects plus relay sheds (cumulative).
	Shed uint64 `json:"shed"`
	// Degraded reports the overload controller's hysteresis state.
	Degraded bool `json:"degraded,omitempty"`
}

// PeerInfo is the identifier quadruplet of Section 3.3:
// ⟨address, coordinate, capacity⟩ (address subsumes IP + port).
type PeerInfo struct {
	Addr     string
	Coord    []float64
	Capacity float64
	// CoordErr is the sender's Vivaldi error estimate when live coordinate
	// measurement is enabled (0 for static coordinates).
	CoordErr float64
}

// Message is the single envelope of the live protocol. Fields are used
// per-type; unused fields stay zero.
type Message struct {
	Type Type
	// From is the sender's info (always set).
	From PeerInfo
	// ReqID correlates probe/search requests with responses.
	ReqID uint64

	// Neighbors carries a probe response's neighbour list.
	Neighbors []PeerInfo

	// GroupID names the communication group for group-scoped messages.
	GroupID string
	// Rendezvous identifies the group's rendezvous point on advertisements.
	Rendezvous PeerInfo
	// TTL bounds advertisement and search propagation.
	TTL int
	// Origin is the search originator (search hits are sent straight back).
	Origin PeerInfo
	// Subscriber is the peer a join is being made for.
	Subscriber PeerInfo

	// MsgID deduplicates flooded advertisements and searches.
	MsgID uint64
	// Data is the application payload.
	Data []byte

	// Seq is the payload's per-(group, source) sequence number, stamped by
	// the publisher (first sequence is 1; 0 means unsequenced). From stays
	// the original publisher across hops, so (GroupID, From.Addr, Seq)
	// identifies a payload end to end.
	Seq uint64
	// Relay is the forwarding hop a payload last travelled through (the
	// publisher itself on the first hop). Receivers NACK missing sequences
	// back along this link.
	Relay PeerInfo
	// Mode carries the group's delivery mode on advertisements, joins,
	// join acks, search hits, beacons, and digests.
	Mode DeliveryMode
	// NackSource and NackSeqs name the publisher and the missing sequences
	// a TNack requests; Origin is the requester the retransmissions go
	// straight back to, and TTL bounds the hop-by-hop escalation toward
	// the source.
	NackSource string
	NackSeqs   []uint64
	// Digest lists per-source high-water marks on TDigest messages.
	Digest []DigestEntry

	// Epoch is the sending root's succession epoch on advertisements,
	// beacons, and handoffs (0 when the sender predates succession or is not
	// speaking for a root). Receivers resolve conflicting root claims by
	// comparing epochs.
	Epoch uint64
	// Deputies is the group's ordered succession roster, carried down the
	// tree on beacons so every member knows who inherits the group.
	Deputies []PeerInfo
	// Charter is the replicated group descriptor on beacons addressed to
	// deputies and on THandoff messages (zero Epoch means absent).
	Charter Charter

	// SentAt timestamps heartbeats for RTT measurement.
	SentAt time.Time

	// TraceID correlates the hops of one protocol action for the tracing
	// layer (internal/trace): stamped by the originator on payloads,
	// advertisements, joins (echoed on acks), searches, NACKs, and carried
	// through relays and retransmissions. 0 means the originator did not
	// trace.
	TraceID uint64
	// Hops counts overlay links the message travelled from its originator
	// (0 on the first wire hop; each relay increments before forwarding).
	Hops int
	// OriginAt is the publisher's timestamp on payloads — the zero point of
	// end-to-end latency measurement. Retransmission buffers preserve it so
	// NACK-recovered payloads still measure true publish→deliver latency.
	OriginAt time.Time
	// RelayedAt is when the previous hop handed the message to its
	// transport, letting the receiver measure per-hop queue+wire delay
	// without a shared clock beyond the host's (in-process fabrics and
	// single-host deployments; cross-host skew only distorts, never breaks,
	// the trace).
	RelayedAt time.Time

	// Path carries a tree root path (addresses from a node up to the
	// rendezvous) on join acks and search hits, letting re-joining members
	// avoid attaching inside their own subtree.
	Path []string

	// Backups lists precomputed backup access points on beacons and join
	// acks: tree nodes outside the recipient's subtree (its grandparent,
	// siblings, the rendezvous, and inherited ancestors' backups) that the
	// recipient can fail over to directly when its parent dies, without
	// paying a ripple search. This is the live-runtime port of the
	// dynamic-replication extension (protocol.ComputeBackups).
	Backups []PeerInfo

	// Target is the 20-byte DHT identifier a TDhtFindNode lookup steps
	// toward (arbitrary targets cover bucket refresh and self-lookups;
	// value lookups derive their key from GroupID instead).
	Target []byte

	// Health carries gossiped health digests (the sender's own plus a
	// bounded sample of its fleet view) on heartbeats, beacons, and
	// TTelemetry messages. See internal/telemetry.
	Health []HealthDigest
}
