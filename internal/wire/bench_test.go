package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

// Gob-vs-binary codec benchmarks. The decode side replays a pre-encoded
// stream so both codecs are measured steady-state, as on a live connection:
// the gob stream's type descriptors travel once in a warm-up frame read
// outside the timer (a real link pays them once per connection), and the
// binary reader keeps its string-intern table warm the same way a long-lived
// link would.

// benchPeer/benchMessages are the traffic shapes the hot path actually
// carries: a chat-sized payload relayed down a tree, a beacon with a
// replicated charter, an anti-entropy digest, and a heartbeat.
func benchPeers() (PeerInfo, PeerInfo) {
	return PeerInfo{Addr: "10.0.0.1:7000", Coord: []float64{12.5, -3.25}, Capacity: 50},
		PeerInfo{Addr: "10.0.0.2:7000", Coord: []float64{8, 41.5}, Capacity: 10, CoordErr: 0.25}
}

func benchMessages() map[string]*Message {
	p1, p2 := benchPeers()
	t0 := time.Unix(1700000000, 123456789)
	return map[string]*Message{
		"payload": {Type: TPayload, From: p1, GroupID: "chat", Seq: 42, Relay: p2,
			Data: bytes.Repeat([]byte("m"), 256), TraceID: 7, Hops: 2,
			OriginAt: t0, RelayedAt: t0.Add(time.Millisecond)},
		"beacon": {Type: TBeacon, From: p1, GroupID: "chat", Epoch: 9,
			Mode: ReliableOrdered, Path: []string{"10.0.0.1:7000"},
			Backups: []PeerInfo{p2}, Deputies: []PeerInfo{p2},
			Charter: Charter{GroupID: "chat", Mode: ReliableOrdered, Epoch: 9,
				Deputies:  []PeerInfo{p2},
				HighWater: []DigestEntry{{Source: "10.0.0.2:7000", High: 41}}}},
		"digest": {Type: TDigest, From: p1, GroupID: "chat", Mode: Reliable,
			Digest: []DigestEntry{
				{Source: "10.0.0.1:7000", High: 1041},
				{Source: "10.0.0.2:7000", High: 977},
				{Source: "10.0.0.3:7000", High: 64},
				{Source: "10.0.0.4:7000", High: 12}}},
		"heartbeat": {Type: THeartbeat, From: p1, SentAt: t0},
	}
}

// benchStream replays a pre-encoded frame stream for decode benchmarks. The
// stream holds one warm-up frame plus chunk identical frames; when the chunk
// is exhausted the stream rewinds and re-reads the warm-up frame with the
// benchmark timer stopped, so descriptor and interning costs never pollute
// the per-op numbers.
type benchStream struct {
	data  []byte
	rd    *bytes.Reader
	fr    *FrameReader
	left  int
	chunk int
}

func newBenchStream(tb testing.TB, version int, msg *Message, chunk int) *benchStream {
	tb.Helper()
	var buf bytes.Buffer
	fw, err := NewFrameWriterVersion(&buf, version)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < chunk+1; i++ {
		if err := fw.WriteMessage(msg); err != nil {
			tb.Fatal(err)
		}
	}
	return &benchStream{data: buf.Bytes(), rd: new(bytes.Reader), chunk: chunk}
}

func (s *benchStream) next(b *testing.B, msg *Message) {
	if s.left == 0 {
		b.StopTimer()
		s.rd.Reset(s.data)
		s.fr = NewFrameReader(s.rd)
		if err := s.fr.ReadMessage(msg); err != nil {
			b.Fatal(err)
		}
		s.left = s.chunk
		b.StartTimer()
	}
	if err := s.fr.ReadMessage(msg); err != nil {
		b.Fatal(err)
	}
	s.left--
}

const benchChunk = 4096

func benchEncode(b *testing.B, version int) {
	for name, msg := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			fw, err := NewFrameWriterVersion(io.Discard, version)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fw.WriteMessage(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchDecode(b *testing.B, version int) {
	for name, msg := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			s := newBenchStream(b, version, msg, benchChunk)
			var got Message
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.next(b, &got)
			}
		})
	}
}

func BenchmarkEncodeBinary(b *testing.B) { benchEncode(b, VersionBinary) }
func BenchmarkEncodeGob(b *testing.B)    { benchEncode(b, VersionGob) }
func BenchmarkDecodeBinary(b *testing.B) { benchDecode(b, VersionBinary) }
func BenchmarkDecodeGob(b *testing.B)    { benchDecode(b, VersionGob) }

// relayFanout is the tree fan-out a relay hop pays (parent + children minus
// the arrival link; 3 is a typical interior node).
const relayFanout = 3

// BenchmarkRelayHopBinary is the headline number of docs/PERFORMANCE.md: one
// relay hop on the binary path — decode an inbound payload frame, restamp the
// relay fields, encode ONCE into a pooled buffer, and write the same bytes to
// every tree link (the transport's SendMany fast path).
func BenchmarkRelayHopBinary(b *testing.B) {
	msg := benchMessages()["payload"]
	s := newBenchStream(b, VersionBinary, msg, benchChunk)
	var got Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.next(b, &got)
		got.Relay = got.From
		got.Hops++
		buf := GetEncodeBuffer()
		frame, err := AppendMessage(buf, &got)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < relayFanout; j++ {
			if _, err := io.Discard.Write(frame); err != nil {
				b.Fatal(err)
			}
		}
		PutEncodeBuffer(frame)
	}
}

// BenchmarkRelayHopGob is the same relay hop on the legacy gob path: gob
// streams are stateful, so every tree link owns its encoder and the message
// is re-encoded per link.
func BenchmarkRelayHopGob(b *testing.B) {
	msg := benchMessages()["payload"]
	s := newBenchStream(b, VersionGob, msg, benchChunk)
	writers := make([]*FrameWriter, relayFanout)
	for j := range writers {
		fw, err := NewFrameWriterVersion(io.Discard, VersionGob)
		if err != nil {
			b.Fatal(err)
		}
		// Warm each link's encoder past its descriptor frame, as a live
		// connection would be.
		if err := fw.WriteMessage(msg); err != nil {
			b.Fatal(err)
		}
		writers[j] = fw
	}
	var got Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.next(b, &got)
		got.Relay = got.From
		got.Hops++
		for _, fw := range writers {
			if err := fw.WriteMessage(&got); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCoalescedEncode measures packing one beacon+digest pair into a
// shared container frame — the per-epoch control-plane cost of a tree link.
func BenchmarkCoalescedEncode(b *testing.B) {
	msgs := benchMessages()
	beacon, digest := msgs["beacon"], msgs["digest"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetEncodeBuffer()
		subs, err := AppendSubMessage(buf, beacon)
		if err != nil {
			b.Fatal(err)
		}
		if subs, err = AppendSubMessage(subs, digest); err != nil {
			b.Fatal(err)
		}
		frame := GetEncodeBuffer()
		if frame, err = AppendCoalesced(frame, subs); err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(frame); err != nil {
			b.Fatal(err)
		}
		PutEncodeBuffer(frame)
		PutEncodeBuffer(subs)
	}
}

// --- BENCH_pr6.json harness ----------------------------------------------

// relayAllocBudget is the committed allocation budget for one binary relay
// hop (decode + pooled re-encode + fan-out). CI fails when the hot path
// regresses above it. The measured value is ~4 allocs/op (the decoded
// message's Data and Coord copies plus window bookkeeping); the budget
// leaves modest headroom, not an order of magnitude.
const relayAllocBudget = 8

// relayAllocRatioFloor is the minimum gob-to-binary allocs/op improvement
// the PR's acceptance bar demands on the relay hot path.
const relayAllocRatioFloor = 5.0

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

type benchReport struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	Benchmarks    []benchRecord `json:"benchmarks"`
	Relay         struct {
		BinaryAllocsPerOp int64   `json:"binary_allocs_per_op"`
		GobAllocsPerOp    int64   `json:"gob_allocs_per_op"`
		AllocRatio        float64 `json:"alloc_ratio"`
		Budget            int64   `json:"budget"`
		RatioFloor        float64 `json:"ratio_floor"`
	} `json:"relay"`
}

// TestWriteBenchJSON runs the codec benchmark suite, writes the results to
// the path in $BENCH_JSON (the repo commits them as BENCH_pr6.json — the
// measured perf trajectory referenced by docs/PERFORMANCE.md), and enforces
// the relay hot path's allocation budget: binary allocs/op within
// relayAllocBudget AND at least relayAllocRatioFloor× below gob.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<output path> to run the benchmark harness")
	}
	report := benchReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}
	add := func(name string, fn func(*testing.B)) benchRecord {
		res := testing.Benchmark(fn)
		rec := benchRecord{
			Name:        name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		report.Benchmarks = append(report.Benchmarks, rec)
		t.Logf("%-28s %12.0f ns/op %6d B/op %4d allocs/op", name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		return rec
	}
	for _, shape := range []string{"payload", "beacon", "digest", "heartbeat"} {
		shape := shape
		msg := benchMessages()[shape]
		for _, codec := range []struct {
			tag     string
			version int
		}{{"binary", VersionBinary}, {"gob", VersionGob}} {
			codec := codec
			add(fmt.Sprintf("encode/%s/%s", codec.tag, shape), func(b *testing.B) {
				fw, err := NewFrameWriterVersion(io.Discard, codec.version)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := fw.WriteMessage(msg); err != nil {
						b.Fatal(err)
					}
				}
			})
			add(fmt.Sprintf("decode/%s/%s", codec.tag, shape), func(b *testing.B) {
				s := newBenchStream(b, codec.version, msg, benchChunk)
				var got Message
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.next(b, &got)
				}
			})
		}
	}
	binRelay := add("relay-hop/binary", BenchmarkRelayHopBinary)
	gobRelay := add("relay-hop/gob", BenchmarkRelayHopGob)
	add("coalesced-encode/binary", BenchmarkCoalescedEncode)

	report.Relay.BinaryAllocsPerOp = binRelay.AllocsPerOp
	report.Relay.GobAllocsPerOp = gobRelay.AllocsPerOp
	report.Relay.Budget = relayAllocBudget
	report.Relay.RatioFloor = relayAllocRatioFloor
	if binRelay.AllocsPerOp > 0 {
		report.Relay.AllocRatio = float64(gobRelay.AllocsPerOp) / float64(binRelay.AllocsPerOp)
	} else {
		report.Relay.AllocRatio = float64(gobRelay.AllocsPerOp)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (relay: binary %d allocs/op, gob %d allocs/op, ratio %.1fx)",
		path, binRelay.AllocsPerOp, gobRelay.AllocsPerOp, report.Relay.AllocRatio)

	if binRelay.AllocsPerOp > relayAllocBudget {
		t.Errorf("binary relay hop allocates %d/op, over the committed budget of %d",
			binRelay.AllocsPerOp, relayAllocBudget)
	}
	if report.Relay.AllocRatio < relayAllocRatioFloor {
		t.Errorf("binary relay hop is only %.1fx better than gob in allocs/op (floor %.1fx)",
			report.Relay.AllocRatio, relayAllocRatioFloor)
	}
}
