package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestGobRoundTrip(t *testing.T) {
	msg := Message{
		Type:       TAdvertise,
		From:       PeerInfo{Addr: "10.0.0.1:7001", Coord: []float64{1.5, -2.25}, Capacity: 100, CoordErr: 0.3},
		ReqID:      42,
		Neighbors:  []PeerInfo{{Addr: "n1"}, {Addr: "n2", Capacity: 10}},
		GroupID:    "room",
		Rendezvous: PeerInfo{Addr: "rdv"},
		TTL:        7,
		Origin:     PeerInfo{Addr: "origin"},
		Subscriber: PeerInfo{Addr: "sub"},
		MsgID:      999,
		Data:       []byte{0, 1, 2, 255},
		SentAt:     time.Unix(1e9, 12345).UTC(),
		Path:       []string{"a", "b"},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msg, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, msg)
	}
}

func TestGobRoundTripProperty(t *testing.T) {
	f := func(addr string, coordRaw [3]float64, cap float64, ttl uint8, data []byte, gid string) bool {
		msg := Message{
			Type:    TPayload,
			From:    PeerInfo{Addr: addr, Coord: coordRaw[:], Capacity: cap},
			GroupID: gid,
			TTL:     int(ttl),
			Data:    data,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
			return false
		}
		var got Message
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			return false
		}
		// gob encodes empty slices as nil; normalize before comparing.
		if len(msg.Data) == 0 {
			msg.Data = nil
		}
		if len(got.Data) == 0 {
			got.Data = nil
		}
		return reflect.DeepEqual(msg, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMessageEncodes(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Message{}); err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Type != 0 || got.TTL != 0 {
		t.Fatalf("zero message mutated: %+v", got)
	}
}

func TestTypeStrings(t *testing.T) {
	types := []Type{
		TProbe, TProbeResp, TConnect, TBackConnect, TBackAccept,
		TAdvertise, TJoin, TJoinAck, TSearch, TSearchHit, TPayload,
		TBeacon, TLeave, THeartbeat, THeartbeatAck,
	}
	seen := make(map[string]bool, len(types))
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q for %d", s, int(ty))
		}
		seen[s] = true
	}
	if Type(99).String() != "type(99)" {
		t.Fatalf("unknown type name = %q", Type(99).String())
	}
}
