package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

// unsafeStringData exposes a string's backing pointer so the interning test
// can assert identity, not just equality.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// testMessages covers every message shape the protocol uses, including every
// field at least once. Shared by round-trip, cross-version, and benchmark
// code.
func testMessages() []Message {
	peers := []PeerInfo{
		{Addr: "10.0.0.1:7001", Coord: []float64{1.5, -2.25, 3}, Capacity: 100, CoordErr: 0.3},
		{Addr: "10.0.0.2:7002", Coord: []float64{-4, 5}, Capacity: 10},
	}
	return []Message{
		{},
		{Type: TProbe, From: peers[0], ReqID: 7},
		{Type: TProbeResp, From: peers[1], ReqID: 7, Neighbors: peers},
		{Type: TAdvertise, From: peers[0], GroupID: "g", Rendezvous: peers[1],
			TTL: 7, MsgID: 99, Mode: ReliableOrdered, Epoch: 3, TraceID: 12},
		{Type: TJoin, From: peers[0], GroupID: "g", Subscriber: peers[0],
			Rendezvous: peers[1], ReqID: 12, Path: []string{"a", "b"}},
		{Type: TJoinAck, From: peers[1], GroupID: "g", ReqID: 12, Mode: Reliable,
			Path: []string{"r"}, Backups: peers},
		{Type: TSearch, From: peers[0], GroupID: "g", Origin: peers[0],
			TTL: 2, MsgID: 41},
		{Type: TPayload, From: peers[0], GroupID: "g", Seq: 42, Relay: peers[1],
			Data: bytes.Repeat([]byte("x"), 1024), TraceID: 5, Hops: 3,
			OriginAt: time.Unix(1700000000, 123), RelayedAt: time.Unix(1700000001, 456)},
		{Type: TBeacon, From: peers[1], GroupID: "g", Path: []string{"r"},
			Mode: Reliable, Backups: peers, Epoch: 2, Deputies: peers,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 2,
				Deputies: peers, HighWater: []DigestEntry{{Source: "s", High: 9}}}},
		{Type: THeartbeat, From: peers[0], SentAt: time.Unix(1700000002, 789)},
		{Type: TNack, From: peers[0], GroupID: "g", NackSource: "s",
			NackSeqs: []uint64{1, 2, 1 << 40}, Origin: peers[0], TTL: 4},
		{Type: TDigest, From: peers[0], GroupID: "g", Mode: Reliable,
			Digest: []DigestEntry{{Source: "a", High: 10}, {Source: "b", High: 1 << 50}}},
		{Type: THandoff, From: peers[0], GroupID: "g", Epoch: 5,
			Charter: Charter{GroupID: "g", Epoch: 5, Deputies: peers}},
		{Type: TLeave, From: peers[1], GroupID: "g"},
		{Type: TDhtFindNode, From: peers[0], ReqID: 31,
			Target: bytes.Repeat([]byte{0xab}, 20)},
		{Type: TDhtFindNodeResp, From: peers[1], ReqID: 31, Neighbors: peers},
		{Type: TDhtFindValue, From: peers[0], ReqID: 32, GroupID: "g"},
		{Type: TDhtFindValueResp, From: peers[1], ReqID: 32, GroupID: "g",
			Rendezvous: peers[0], Mode: Reliable, Epoch: 4,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 4, Deputies: peers}},
		{Type: TDhtStore, From: peers[0], ReqID: 33, GroupID: "g",
			Rendezvous: peers[0], Mode: Reliable, Epoch: 4,
			Charter: Charter{GroupID: "g", Mode: Reliable, Epoch: 4, Deputies: peers}},
		{Type: TDhtStoreAck, From: peers[1], ReqID: 33, GroupID: "g", Epoch: 4},
		{Type: THeartbeat, From: peers[0], SentAt: time.Unix(1700000002, 789),
			Health: []HealthDigest{
				{Addr: "10.0.0.1:7001", Epoch: 12, Utility: 0.5, Pressure: 0.25,
					P99Ms: 4.5, Inbox: 3, Delivered: 1 << 33, Shed: 2, Degraded: true}}},
		{Type: TTelemetry, From: peers[1],
			Health: []HealthDigest{
				{Addr: "10.0.0.2:7002", Epoch: 9, Delivered: 100},
				{Addr: "10.0.0.1:7001", Epoch: 11, Utility: 1, Pressure: 1,
					P99Ms: 250, Inbox: 64, Delivered: 7, Shed: 1 << 40}}},
	}
}

// msgEquivalent compares messages up to time representation: the binary
// codec transports timestamps as Unix nanoseconds, so decoded times are
// .Equal to — but not DeepEqual with — what was encoded.
func msgEquivalent(a, b *Message) bool {
	if !a.SentAt.Equal(b.SentAt) || !a.OriginAt.Equal(b.OriginAt) || !a.RelayedAt.Equal(b.RelayedAt) {
		return false
	}
	ca, cb := *a, *b
	ca.SentAt, cb.SentAt = time.Time{}, time.Time{}
	ca.OriginAt, cb.OriginAt = time.Time{}, time.Time{}
	ca.RelayedAt, cb.RelayedAt = time.Time{}, time.Time{}
	return reflect.DeepEqual(ca, cb)
}

func TestBinaryRoundTripAllTypes(t *testing.T) {
	for i, msg := range testMessages() {
		frame, err := AppendMessage(nil, &msg)
		if err != nil {
			t.Fatalf("msg %d (%s): encode: %v", i, msg.Type, err)
		}
		got, err := DecodeMessage(frame)
		if err != nil {
			t.Fatalf("msg %d (%s): decode: %v", i, msg.Type, err)
		}
		if !msgEquivalent(&got, &msg) {
			t.Fatalf("msg %d (%s) mismatch:\n got %+v\nwant %+v", i, msg.Type, got, msg)
		}
	}
}

func TestBinaryStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriterVersion(&buf, VersionBinary)
	if err != nil {
		t.Fatal(err)
	}
	msgs := testMessages()
	for i := range msgs {
		if err := fw.WriteMessage(&msgs[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := range msgs {
		var got Message
		if err := fr.ReadMessage(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !msgEquivalent(&got, &msgs[i]) {
			t.Fatalf("message %d mismatch:\n got %+v\nwant %+v", i, got, msgs[i])
		}
	}
	var extra Message
	if err := fr.ReadMessage(&extra); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addr string, coordRaw [3]float64, capacity float64, ttl uint8, data []byte, gid string, seq uint64) bool {
		for i, c := range coordRaw {
			if math.IsNaN(c) {
				coordRaw[i] = 0
			}
		}
		if math.IsNaN(capacity) {
			capacity = 0
		}
		msg := Message{
			Type:    TPayload,
			From:    PeerInfo{Addr: addr, Coord: coordRaw[:], Capacity: capacity},
			GroupID: gid,
			TTL:     int(ttl),
			Seq:     seq,
			Data:    data,
		}
		frame, err := AppendMessage(nil, &msg)
		if err != nil {
			return false
		}
		got, err := DecodeMessage(frame)
		if err != nil {
			return false
		}
		if len(msg.Data) == 0 {
			msg.Data = nil
		}
		return msgEquivalent(&got, &msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescedRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: TBeacon, From: PeerInfo{Addr: "r:1", Capacity: 50}, GroupID: "g",
			Epoch: 3, Mode: Reliable, Path: []string{"r:1"}},
		{Type: TDigest, From: PeerInfo{Addr: "r:1", Capacity: 50}, GroupID: "g",
			Mode: Reliable, Digest: []DigestEntry{{Source: "r:1", High: 17}}},
		{Type: TNack, From: PeerInfo{Addr: "m:2"}, GroupID: "g",
			NackSource: "r:1", NackSeqs: []uint64{4, 5}, Origin: PeerInfo{Addr: "m:2"}, TTL: 3},
	}
	var sub []byte
	var err error
	for i := range msgs {
		if sub, err = AppendSubMessage(sub, &msgs[i]); err != nil {
			t.Fatalf("sub %d: %v", i, err)
		}
	}
	frame, err := AppendCoalesced(nil, sub)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrames(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !msgEquivalent(&got[i], &msgs[i]) {
			t.Fatalf("sub-message %d mismatch:\n got %+v\nwant %+v", i, got[i], msgs[i])
		}
	}
	// The stream reader unpacks the container one ReadMessage at a time.
	fr := NewFrameReader(bytes.NewReader(frame))
	for i := range msgs {
		var m Message
		if err := fr.ReadMessage(&m); err != nil {
			t.Fatalf("stream read %d: %v", i, err)
		}
		if m.Type != msgs[i].Type {
			t.Fatalf("stream read %d: type %s, want %s", i, m.Type, msgs[i].Type)
		}
	}
	// DecodeMessage (single-message contract) must reject the container.
	if _, err := DecodeMessage(frame); err == nil {
		t.Fatal("DecodeMessage accepted a multi-message coalesced frame")
	}
}

func TestCoalescedMalformed(t *testing.T) {
	msg := Message{Type: TBeacon, GroupID: "g", Epoch: 1}
	sub, err := AppendSubMessage(nil, &msg)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendCoalesced(nil, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere inside the container must error, never panic.
	for cut := 1; cut < len(frame); cut++ {
		if _, err := DecodeFrames(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	// A nested container is a protocol error.
	nested, err := AppendCoalesced(nil, sub)
	if err != nil {
		t.Fatal(err)
	}
	inner := append([]byte{coalescedType}, appendUvarint(nil, uint64(len(nested)))...)
	inner = append(inner, nested...)
	bad, err := AppendCoalesced(nil, inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrames(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("nested container: got %v, want ErrBadMessage", err)
	}
	// An empty container is a protocol error at encode time.
	if _, err := AppendCoalesced(nil, nil); !errors.Is(err, ErrFrameEmpty) {
		t.Fatalf("empty container: got %v, want ErrFrameEmpty", err)
	}
}

func TestBinaryRejectsUnknownFieldBits(t *testing.T) {
	body := appendUvarint(nil, 1<<fieldCount) // one bit past the known fields
	frame := []byte{magic0, magic1, VersionBinary, byte(TProbe), 0, 0, 0, 0}
	frame[4] = byte(len(body))
	frame = append(frame, body...)
	if _, err := DecodeMessage(frame); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("got %v, want ErrBadMessage", err)
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	msg := Message{Type: TProbe}
	frame, err := AppendMessage(nil, &msg)
	if err != nil {
		t.Fatal(err)
	}
	frame[2] = 9 // future version byte
	if _, err := DecodeMessage(frame); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

func TestBinaryRejectsUnencodable(t *testing.T) {
	if _, err := AppendMessage(nil, &Message{Type: Type(300)}); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("huge type: got %v, want ErrUnencodable", err)
	}
	if _, err := AppendMessage(nil, &Message{Type: Type(coalescedType)}); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("container type: got %v, want ErrUnencodable", err)
	}
	big := Message{Type: TProbe, From: PeerInfo{Coord: make([]float64, maxCoordDims+1)}}
	if _, err := AppendMessage(nil, &big); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("oversized coord: got %v, want ErrUnencodable", err)
	}
}

// TestInternReusesStrings pins the allocation story: the second decode of a
// frame naming the same address and group must return the interned strings,
// not fresh copies.
func TestInternReusesStrings(t *testing.T) {
	msg := Message{Type: TPayload, From: PeerInfo{Addr: "peer-a:1"}, GroupID: "room", Seq: 1, Data: []byte("x")}
	frame, err := AppendMessage(nil, &msg)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(append(append([]byte{}, frame...), frame...)))
	var first, second Message
	if err := fr.ReadMessage(&first); err != nil {
		t.Fatal(err)
	}
	if err := fr.ReadMessage(&second); err != nil {
		t.Fatal(err)
	}
	if unsafeStringData(first.From.Addr) != unsafeStringData(second.From.Addr) {
		t.Error("From.Addr not interned across frames")
	}
	if unsafeStringData(first.GroupID) != unsafeStringData(second.GroupID) {
		t.Error("GroupID not interned across frames")
	}
}

// TestParseVersion covers the -wire flag mapping.
func TestParseVersion(t *testing.T) {
	for in, want := range map[string]int{"": VersionBinary, "binary": VersionBinary, "2": VersionBinary, "gob": VersionGob, "1": VersionGob} {
		got, err := ParseVersion(in)
		if err != nil || got != want {
			t.Fatalf("ParseVersion(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := ParseVersion("carrier-pigeon"); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestBinaryZeroMessage pins the smallest frame: header + 1-byte empty
// bitmap.
func TestBinaryZeroMessage(t *testing.T) {
	frame, err := AppendMessage(nil, &Message{})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != binHeaderLen+1 {
		t.Fatalf("zero message frame is %d bytes, want %d", len(frame), binHeaderLen+1)
	}
	got, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Message{}) {
		t.Fatalf("zero message mutated: %+v", got)
	}
}
