package wire

// Class buckets every message into one of three overload-handling tiers.
// Transports shed load by class when an inbox saturates (control is never
// shed while a lower class still holds a slot) and the node's degradation
// policy keys off the same classification, so the whole stack agrees on
// what "important" means.
type Class uint8

// Classes, highest priority first. The numeric order is the shed order's
// inverse: under pressure the highest-numbered non-empty class loses first.
const (
	// ClassControl is everything that keeps the overlay alive: probes,
	// connection setup, advertisements, joins, searches, beacons,
	// heartbeats, NACKs, digests, handoffs — every non-payload type.
	// Starving this class collapses trees exactly when load peaks, so it
	// sheds last.
	ClassControl Class = iota
	// ClassReliableData is payload traffic in a Reliable or ReliableOrdered
	// group, including NACK-triggered retransmissions (which are payloads
	// re-sent with the group's mode stamped). Shedding one costs a
	// NACK/digest recovery round trip, not the message.
	ClassReliableData
	// ClassBestEffort is payload traffic in a BestEffort group: already
	// fire-and-forget, so it absorbs overload first.
	ClassBestEffort

	// NumClasses is the number of classes (array-index bound).
	NumClasses = 3
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassReliableData:
		return "reliable-data"
	case ClassBestEffort:
		return "best-effort"
	default:
		return "class(?)"
	}
}

// Classify buckets one message. Payloads carry their group's delivery mode
// (stamped by the publisher and preserved across relays and retransmissions);
// everything else is control plane. A zero Mode is BestEffort by definition,
// so legacy payloads from nodes that predate mode stamping degrade to the
// safest assumption: sheddable.
func Classify(m *Message) Class {
	if m.Type != TPayload {
		return ClassControl
	}
	if m.Mode == BestEffort {
		return ClassBestEffort
	}
	return ClassReliableData
}
