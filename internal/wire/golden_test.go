package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.txt from the current codec")

// goldenMessages is one representative message per wire type, with every
// field the type uses populated. The encodings of these messages are pinned
// byte-for-byte in testdata/golden.txt: any diff there is a wire format
// break and must come with a version bump (see docs/WIRE.md, Versioning).
func goldenMessages() []struct {
	name string
	msg  Message
} {
	p1 := PeerInfo{Addr: "10.0.0.1:7000", Coord: []float64{1, 2}, Capacity: 50}
	p2 := PeerInfo{Addr: "10.0.0.2:7000", Coord: []float64{-3, 0.5}, Capacity: 10, CoordErr: 0.25}
	t0 := time.Unix(1700000000, 123456789)
	return []struct {
		name string
		msg  Message
	}{
		{"probe", Message{Type: TProbe, From: p1, ReqID: 7}},
		{"probe-resp", Message{Type: TProbeResp, From: p2, ReqID: 7,
			Neighbors: []PeerInfo{p1, p2}}},
		{"connect", Message{Type: TConnect, From: p1}},
		{"back-connect", Message{Type: TBackConnect, From: p2, ReqID: 9}},
		{"back-accept", Message{Type: TBackAccept, From: p1, ReqID: 9}},
		{"advertise", Message{Type: TAdvertise, From: p1, GroupID: "chat",
			Rendezvous: p1, TTL: 7, MsgID: 99, Mode: ReliableOrdered, Epoch: 3,
			TraceID: 99, OriginAt: t0}},
		{"join", Message{Type: TJoin, From: p2, GroupID: "chat", ReqID: 12,
			Subscriber: p2, Rendezvous: p1, Path: []string{"10.0.0.1:7000"},
			TraceID: 4, Hops: 1}},
		{"join-ack", Message{Type: TJoinAck, From: p1, GroupID: "chat", ReqID: 12,
			Rendezvous: p1, Mode: Reliable, Epoch: 3, Path: []string{"10.0.0.1:7000"},
			Backups: []PeerInfo{p2}}},
		{"search", Message{Type: TSearch, From: p2, GroupID: "chat", TTL: 2,
			Origin: p2, ReqID: 31, MsgID: 44}},
		{"search-hit", Message{Type: TSearchHit, From: p1, GroupID: "chat",
			ReqID: 31, Rendezvous: p1, Mode: Reliable,
			Path: []string{"10.0.0.1:7000"}, Hops: 2}},
		{"payload", Message{Type: TPayload, From: p1, GroupID: "chat", Seq: 42,
			Relay: p2, Data: []byte("hello group"), TraceID: 5, Hops: 3,
			OriginAt: t0, RelayedAt: t0.Add(time.Millisecond)}},
		{"beacon", Message{Type: TBeacon, From: p1, GroupID: "chat", Epoch: 3,
			Mode: ReliableOrdered, Path: []string{"10.0.0.1:7000"},
			Backups: []PeerInfo{p2}, Deputies: []PeerInfo{p2},
			Charter: Charter{GroupID: "chat", Mode: ReliableOrdered, Epoch: 3,
				Deputies:  []PeerInfo{p2},
				HighWater: []DigestEntry{{Source: "10.0.0.2:7000", High: 41}}}}},
		{"leave", Message{Type: TLeave, From: p2, GroupID: "chat"}},
		{"heartbeat", Message{Type: THeartbeat, From: p1, SentAt: t0}},
		{"heartbeat-ack", Message{Type: THeartbeatAck, From: p2, SentAt: t0}},
		{"nack", Message{Type: TNack, From: p2, GroupID: "chat",
			NackSource: "10.0.0.1:7000", NackSeqs: []uint64{40, 41, 43},
			Origin: p2, TTL: 4}},
		{"digest", Message{Type: TDigest, From: p1, GroupID: "chat",
			Mode: Reliable, Digest: []DigestEntry{
				{Source: "10.0.0.1:7000", High: 41},
				{Source: "10.0.0.2:7000", High: 7}}}},
		{"handoff", Message{Type: THandoff, From: p1, GroupID: "chat", Epoch: 5,
			Charter: Charter{GroupID: "chat", Epoch: 5,
				Deputies: []PeerInfo{p2}}}},
		{"dht-find-node", Message{Type: TDhtFindNode, From: p1, ReqID: 21,
			Target: []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a,
				0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14}}},
		{"dht-find-node-resp", Message{Type: TDhtFindNodeResp, From: p2, ReqID: 21,
			Neighbors: []PeerInfo{p1, p2}}},
		{"dht-find-value", Message{Type: TDhtFindValue, From: p2, ReqID: 22,
			GroupID: "chat"}},
		{"dht-find-value-resp", Message{Type: TDhtFindValueResp, From: p1, ReqID: 22,
			GroupID: "chat", Rendezvous: p1, Mode: Reliable, Epoch: 3,
			Charter: Charter{GroupID: "chat", Mode: Reliable, Epoch: 3,
				Deputies: []PeerInfo{p2}}}},
		{"dht-store", Message{Type: TDhtStore, From: p1, ReqID: 23, GroupID: "chat",
			Rendezvous: p1, Mode: Reliable, Epoch: 3,
			Charter: Charter{GroupID: "chat", Mode: Reliable, Epoch: 3,
				Deputies: []PeerInfo{p2}}}},
		{"dht-store-ack", Message{Type: TDhtStoreAck, From: p2, ReqID: 23,
			GroupID: "chat", Epoch: 3}},
		{"telemetry", Message{Type: TTelemetry, From: p1,
			Health: []HealthDigest{
				{Addr: "10.0.0.1:7000", Epoch: 12, Utility: 0.5, Pressure: 0.25,
					P99Ms: 4.5, Inbox: 3, Delivered: 4100, Shed: 2, Degraded: true},
				{Addr: "10.0.0.2:7000", Epoch: 11, Utility: 0.75,
					Delivered: 900}}}},
		{"heartbeat-health", Message{Type: THeartbeat, From: p1, SentAt: t0,
			Health: []HealthDigest{
				{Addr: "10.0.0.1:7000", Epoch: 12, Utility: 0.5, Pressure: 0.25,
					P99Ms: 4.5, Inbox: 3, Delivered: 4100, Shed: 2}}}},
		{"zero", Message{}},
	}
}

// goldenWireDocFrames builds the exact beacon and digest of the worked
// example in docs/WIRE.md and returns their coalesced container frame.
func goldenWireDocFrames(tb testing.TB) []byte {
	tb.Helper()
	beacon := Message{
		Type:    TBeacon,
		From:    PeerInfo{Addr: "10.0.0.1:7000", Coord: []float64{1, 2}, Capacity: 50},
		GroupID: "chat",
		Epoch:   3,
	}
	digest := Message{
		Type:    TDigest,
		From:    PeerInfo{Addr: "10.0.0.1:7000", Coord: []float64{1, 2}, Capacity: 50},
		GroupID: "chat",
		Digest:  []DigestEntry{{Source: "10.0.0.2:7000", High: 41}},
	}
	var subs []byte
	var err error
	if subs, err = AppendSubMessage(subs, &beacon); err != nil {
		tb.Fatal(err)
	}
	if subs, err = AppendSubMessage(subs, &digest); err != nil {
		tb.Fatal(err)
	}
	frame, err := AppendCoalesced(nil, subs)
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

const goldenPath = "testdata/golden.txt"

// TestGoldenVectors pins the binary encoding of every message type
// byte-for-byte. Run `go test ./internal/wire -run TestGoldenVectors -update`
// to regenerate after an intentional format change (which requires a wire
// version bump — these bytes are the protocol).
func TestGoldenVectors(t *testing.T) {
	entries := goldenMessages()
	if *updateGolden {
		var out bytes.Buffer
		fmt.Fprintln(&out, "# Golden binary wire vectors: <name> <hex frame>.")
		fmt.Fprintln(&out, "# Regenerate with: go test ./internal/wire -run TestGoldenVectors -update")
		for _, e := range entries {
			enc, err := EncodeMessage(&e.msg)
			if err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			fmt.Fprintf(&out, "%s %s\n", e.name, hex.EncodeToString(enc))
		}
		fmt.Fprintf(&out, "coalesced-beacon-digest %s\n",
			hex.EncodeToString(goldenWireDocFrames(t)))
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	want := readGolden(t)
	seen := make(map[string]bool)
	for _, e := range entries {
		seen[e.name] = true
		enc, err := EncodeMessage(&e.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", e.name, err)
		}
		wantHex, ok := want[e.name]
		if !ok {
			t.Errorf("%s: missing from %s (run with -update)", e.name, goldenPath)
			continue
		}
		if got := hex.EncodeToString(enc); got != wantHex {
			t.Errorf("%s: wire format drifted — this breaks deployed peers.\n got %s\nwant %s",
				e.name, got, wantHex)
		}
		// The pinned bytes must also decode back to the source message, so
		// a future codec keeps reading frames today's codec wrote.
		raw, err := hex.DecodeString(wantHex)
		if err != nil {
			t.Fatalf("%s: corrupt golden hex: %v", e.name, err)
		}
		dec, err := DecodeMessage(raw)
		if err != nil {
			t.Fatalf("%s: golden bytes no longer decode: %v", e.name, err)
		}
		if !msgEquivalent(&dec, &e.msg) {
			t.Errorf("%s: golden bytes decode to a different message:\n got %+v\nwant %+v",
				e.name, dec, e.msg)
		}
	}
	seen["coalesced-beacon-digest"] = true
	if got := hex.EncodeToString(goldenWireDocFrames(t)); got != want["coalesced-beacon-digest"] {
		t.Errorf("coalesced frame drifted:\n got %s\nwant %s",
			got, want["coalesced-beacon-digest"])
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("stale golden entry %q (run with -update)", name)
		}
	}
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = hexStr
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWireDocHexDumpMatchesCodec holds docs/WIRE.md to the truth: the worked
// hex dump of the coalesced beacon+digest frame in the spec must be exactly
// what the codec emits for the example messages.
func TestWireDocHexDumpMatchesCodec(t *testing.T) {
	doc, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Skipf("docs/WIRE.md not readable: %v", err)
	}
	// The dump sits in a fenced block opened by ```hexdump; each line is
	// hexdump -C style: "offset  hh hh ... hh  |ascii|". Concatenate the
	// byte columns of every such block line.
	var hexBytes []string
	inDump := false
	byteRe := regexp.MustCompile(`^[0-9a-f]{2}$`)
	for _, line := range strings.Split(string(doc), "\n") {
		switch {
		case strings.HasPrefix(line, "```hexdump"):
			inDump = true
		case inDump && strings.HasPrefix(line, "```"):
			inDump = false
		case inDump:
			body := line
			if i := strings.Index(body, "|"); i >= 0 {
				body = body[:i]
			}
			fields := strings.Fields(body)
			if len(fields) == 0 {
				continue
			}
			// fields[0] is the offset column; the rest must be hex bytes.
			for _, f := range fields[1:] {
				if !byteRe.MatchString(f) {
					t.Fatalf("unparseable hexdump token %q in WIRE.md line %q", f, line)
				}
				hexBytes = append(hexBytes, f)
			}
		}
	}
	if len(hexBytes) == 0 {
		t.Fatal("no ```hexdump block found in docs/WIRE.md")
	}
	docFrame, err := hex.DecodeString(strings.Join(hexBytes, ""))
	if err != nil {
		t.Fatalf("WIRE.md hex dump is not valid hex: %v", err)
	}
	frame := goldenWireDocFrames(t)
	if !bytes.Equal(docFrame, frame) {
		t.Fatalf("WIRE.md hex dump does not match the codec:\n doc   %x\n codec %x",
			docFrame, frame)
	}
	// And the documented frame must decode to the two example messages.
	msgs, err := DecodeFrames(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Type != TBeacon || msgs[1].Type != TDigest {
		t.Fatalf("documented frame decoded to %+v", msgs)
	}
}
