package wire

import "testing"

// TestClassify pins the class of every message type: all control types
// classify as control regardless of mode, and payloads split by delivery
// mode with zero-mode (legacy or best-effort) payloads sheddable.
func TestClassify(t *testing.T) {
	controlTypes := []Type{
		TProbe, TProbeResp, TConnect, TBackConnect, TBackAccept,
		TAdvertise, TJoin, TJoinAck, TSearch, TSearchHit,
		TBeacon, TLeave, THeartbeat, THeartbeatAck, TNack, TDigest, THandoff,
		TTelemetry,
	}
	for _, typ := range controlTypes {
		for _, mode := range []DeliveryMode{BestEffort, Reliable, ReliableOrdered} {
			m := Message{Type: typ, Mode: mode}
			if got := Classify(&m); got != ClassControl {
				t.Errorf("Classify(%v, mode=%v) = %v, want control", typ, mode, got)
			}
		}
	}
	cases := []struct {
		mode DeliveryMode
		want Class
	}{
		{BestEffort, ClassBestEffort},
		{Reliable, ClassReliableData},
		{ReliableOrdered, ClassReliableData},
	}
	for _, c := range cases {
		m := Message{Type: TPayload, Mode: c.mode}
		if got := Classify(&m); got != c.want {
			t.Errorf("Classify(payload, mode=%v) = %v, want %v", c.mode, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassControl:      "control",
		ClassReliableData: "reliable-data",
		ClassBestEffort:   "best-effort",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
