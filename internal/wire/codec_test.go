package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestFrameRoundTripStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	msgs := []Message{
		{Type: TProbe, From: PeerInfo{Addr: "a:1", Capacity: 3}, ReqID: 1},
		{Type: TPayload, GroupID: "g", Seq: 9, Data: []byte("hello"),
			From: PeerInfo{Addr: "b:2", Coord: []float64{1, 2}}},
		{Type: TBeacon, GroupID: "g", Epoch: 4,
			Deputies: []PeerInfo{{Addr: "c:3"}},
			Charter: Charter{GroupID: "g", Epoch: 4,
				HighWater: []DigestEntry{{Source: "s", High: 7}}}},
	}
	for i := range msgs {
		if err := fw.WriteMessage(&msgs[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := range msgs {
		var got Message
		if err := fr.ReadMessage(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, msgs[i]) {
			t.Fatalf("message %d mismatch:\n got %+v\nwant %+v", i, got, msgs[i])
		}
	}
	var extra Message
	if err := fr.ReadMessage(&extra); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestFrameReaderRejectsOversizedPrefix(t *testing.T) {
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, MaxFrameSize+1)
	fr := NewFrameReader(bytes.NewReader(append(hdr, 0)))
	var msg Message
	if err := fr.ReadMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameReaderTruncatedFrame(t *testing.T) {
	valid, err := EncodeMessage(&Message{Type: TProbe, From: PeerInfo{Addr: "x:1"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(valid); cut++ {
		fr := NewFrameReader(bytes.NewReader(valid[:cut]))
		var msg Message
		if err := fr.ReadMessage(&msg); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestDecodeMessageRejectsTrailingBytes(t *testing.T) {
	valid, err := EncodeMessage(&Message{Type: TProbe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeMessage(valid); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
}

func TestWriterRejectsOversizedMessage(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	msg := Message{Type: TPayload, Data: make([]byte, MaxFrameSize+1)}
	if err := fw.WriteMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if _, err := EncodeMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("EncodeMessage: got %v, want ErrFrameTooLarge", err)
	}
}

// TestMixedVersionStream interleaves gob and binary frames on one byte
// stream and reads them back with a single sniffing FrameReader — the
// decoder must keep its per-stream gob state alive across binary frames.
// This is the rolling-upgrade wire contract from docs/WIRE.md.
func TestMixedVersionStream(t *testing.T) {
	var buf bytes.Buffer
	gw, err := NewFrameWriterVersion(&buf, VersionGob)
	if err != nil {
		t.Fatal(err)
	}
	bw := NewFrameWriter(&buf)
	msgs := []Message{
		{Type: TProbe, From: PeerInfo{Addr: "a:1", Coord: []float64{1, 2}, Capacity: 3}, ReqID: 1},
		{Type: TPayload, GroupID: "g", Seq: 9, Data: []byte("binary"), MsgID: 2},
		{Type: TDigest, GroupID: "g", Digest: []DigestEntry{{Source: "s", High: 7}}, MsgID: 3},
		{Type: TBeacon, GroupID: "g", Epoch: 4, MsgID: 4,
			Charter: Charter{GroupID: "g", Epoch: 4, Deputies: []PeerInfo{{Addr: "d:1"}}}},
		{Type: TNack, GroupID: "g", NackSource: "s", NackSeqs: []uint64{5, 6}, MsgID: 5},
	}
	for i := range msgs {
		w := gw
		if i%2 == 1 {
			w = bw
		}
		if err := w.WriteMessage(&msgs[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := range msgs {
		var got Message
		if err := fr.ReadMessage(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !msgEquivalent(&got, &msgs[i]) {
			t.Fatalf("message %d mismatch:\n got %+v\nwant %+v", i, got, msgs[i])
		}
	}
	var extra Message
	if err := fr.ReadMessage(&extra); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

// TestEncodeMessageVersionRoundTrips: standalone frames of both wire
// versions decode through the same version-sniffing entry points.
func TestEncodeMessageVersionRoundTrips(t *testing.T) {
	msg := Message{Type: TAdvertise, From: PeerInfo{Addr: "r:1", Capacity: 5},
		GroupID: "g", TTL: 7, MsgID: 11, Mode: ReliableOrdered, Epoch: 2}
	for _, version := range []int{VersionGob, VersionBinary} {
		enc, err := EncodeMessageVersion(&msg, version)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("v%d: decode: %v", version, err)
		}
		if !msgEquivalent(&got, &msg) {
			t.Fatalf("v%d round trip mismatch:\n got %+v\nwant %+v", version, got, msg)
		}
		if _, err := EncodeMessageVersion(&msg, 9); err == nil {
			t.Fatal("unknown version accepted")
		}
	}
}

// TestGobFrameStillDecodes pins backward compatibility with the legacy gob
// framing: a pre-upgrade peer's bytes must keep decoding until the gob
// version is retired.
func TestGobFrameStillDecodes(t *testing.T) {
	msg := Message{Type: TPayload, From: PeerInfo{Addr: "old:1"}, GroupID: "g",
		Seq: 3, Data: []byte("legacy")}
	enc, err := EncodeMessageVersion(&msg, VersionGob)
	if err != nil {
		t.Fatal(err)
	}
	// Gob length prefixes are 4-byte big-endian under the 4MiB cap, so the
	// first byte is always 0x00 — that is what the sniffer relies on to
	// tell the versions apart. Guard the invariant explicitly.
	if enc[0] != 0 {
		t.Fatalf("gob frame no longer starts 0x00 (got %#x); version sniffing is broken", enc[0])
	}
	msgs, err := DecodeFrames(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !msgEquivalent(&msgs[0], &msg) {
		t.Fatalf("gob frame decoded to %+v", msgs)
	}
}
