package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestFrameRoundTripStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	msgs := []Message{
		{Type: TProbe, From: PeerInfo{Addr: "a:1", Capacity: 3}, ReqID: 1},
		{Type: TPayload, GroupID: "g", Seq: 9, Data: []byte("hello"),
			From: PeerInfo{Addr: "b:2", Coord: []float64{1, 2}}},
		{Type: TBeacon, GroupID: "g", Epoch: 4,
			Deputies: []PeerInfo{{Addr: "c:3"}},
			Charter: Charter{GroupID: "g", Epoch: 4,
				HighWater: []DigestEntry{{Source: "s", High: 7}}}},
	}
	for i := range msgs {
		if err := fw.WriteMessage(&msgs[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := range msgs {
		var got Message
		if err := fr.ReadMessage(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, msgs[i]) {
			t.Fatalf("message %d mismatch:\n got %+v\nwant %+v", i, got, msgs[i])
		}
	}
	var extra Message
	if err := fr.ReadMessage(&extra); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestFrameReaderRejectsOversizedPrefix(t *testing.T) {
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, MaxFrameSize+1)
	fr := NewFrameReader(bytes.NewReader(append(hdr, 0)))
	var msg Message
	if err := fr.ReadMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameReaderTruncatedFrame(t *testing.T) {
	valid, err := EncodeMessage(&Message{Type: TProbe, From: PeerInfo{Addr: "x:1"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(valid); cut++ {
		fr := NewFrameReader(bytes.NewReader(valid[:cut]))
		var msg Message
		if err := fr.ReadMessage(&msg); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestDecodeMessageRejectsTrailingBytes(t *testing.T) {
	valid, err := EncodeMessage(&Message{Type: TProbe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeMessage(valid); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
}

func TestWriterRejectsOversizedMessage(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	msg := Message{Type: TPayload, Data: make([]byte, MaxFrameSize+1)}
	if err := fw.WriteMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if _, err := EncodeMessage(&msg); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("EncodeMessage: got %v, want ErrFrameTooLarge", err)
	}
}
