// Frame codec for wire messages: a 4-byte big-endian length prefix followed
// by the gob encoding of one Message. The explicit prefix exists for
// robustness, not speed — gob's own internal length markers would accept
// anything up to its 1 GiB ceiling, so a malformed or hostile peer could
// make a naive decoder allocate wildly before failing. Here the frame length
// is validated against MaxFrameSize BEFORE any allocation, and the payload
// is fully read before gob ever sees it, so a truncated or oversized frame
// errors out cheaply and deterministically (FuzzDecodeMessage holds the
// codec to that).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize bounds one encoded message (4 MiB). Payloads are
// application-bounded well below this; anything larger is a protocol error,
// not a bigger buffer.
const MaxFrameSize = 4 << 20

// frameHeaderLen is the length prefix size in bytes.
const frameHeaderLen = 4

// Framing errors.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrameSize. The
	// stream is poisoned (the peer is not speaking this protocol); callers
	// should drop the connection.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrFrameEmpty reports a zero-length frame, which no Message encodes to.
	ErrFrameEmpty = errors.New("wire: empty frame")
)

// FrameWriter encodes messages onto a byte stream. It keeps one persistent
// gob encoder (type descriptors are transmitted once per stream, not once
// per message) but stages each message through a buffer so the length prefix
// can precede the bytes on the wire. Not safe for concurrent use.
type FrameWriter struct {
	w   io.Writer
	buf bytes.Buffer
	enc *gob.Encoder
	hdr [frameHeaderLen]byte
}

// NewFrameWriter returns a writer framing messages onto w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{w: w}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// WriteMessage frames and writes one message.
func (fw *FrameWriter) WriteMessage(msg *Message) error {
	fw.buf.Reset()
	if err := fw.enc.Encode(msg); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if fw.buf.Len() > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(fw.hdr[:], uint32(fw.buf.Len()))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf.Bytes())
	return err
}

// FrameReader decodes length-prefixed messages from a byte stream, feeding
// the validated frames to one persistent gob decoder. Not safe for
// concurrent use.
type FrameReader struct {
	r   io.Reader
	buf frameBuffer
	dec *gob.Decoder
	hdr [frameHeaderLen]byte
}

// frameBuffer hands one validated frame at a time to the gob decoder. gob
// may retain read state between Decode calls only within a frame; Read past
// the frame end returns EOF-like behaviour via io.ErrUnexpectedEOF guards in
// ReadMessage.
type frameBuffer struct {
	data []byte
	off  int
}

func (b *frameBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *frameBuffer) set(data []byte) {
	b.data = data
	b.off = 0
}

// NewFrameReader returns a reader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	fr := &FrameReader{r: r}
	fr.dec = gob.NewDecoder(&fr.buf)
	return fr
}

// ReadMessage reads and decodes the next frame. It returns io.EOF at a clean
// stream end, io.ErrUnexpectedEOF on a truncated frame, ErrFrameTooLarge on
// a hostile length prefix, and a decode error when the frame bytes are not a
// valid Message. After any non-EOF error the stream position is undefined;
// drop the connection.
func (fr *FrameReader) ReadMessage(msg *Message) error {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	size := binary.BigEndian.Uint32(fr.hdr[:])
	if size == 0 {
		return ErrFrameEmpty
	}
	if size > MaxFrameSize {
		return ErrFrameTooLarge
	}
	// The cap above bounds this allocation; reuse the previous frame's
	// backing array when it fits.
	if cap(fr.buf.data) < int(size) {
		fr.buf.data = make([]byte, size)
	}
	frame := fr.buf.data[:size]
	if _, err := io.ReadFull(fr.r, frame); err != nil {
		return io.ErrUnexpectedEOF
	}
	fr.buf.set(frame)
	if err := fr.dec.Decode(msg); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// encodePool amortizes the per-call encoder setup of EncodeMessage (each
// standalone encoding must re-emit type descriptors, unlike a FrameWriter
// stream).
var encodePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// EncodeMessage renders one message as a standalone frame (length prefix
// included) — the unit FuzzDecodeMessage round-trips and tests build
// corpora from.
func EncodeMessage(msg *Message) ([]byte, error) {
	buf := encodePool.Get().(*bytes.Buffer)
	defer encodePool.Put(buf)
	buf.Reset()
	buf.Write(make([]byte, frameHeaderLen))
	if err := gob.NewEncoder(buf).Encode(msg); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	body := len(out) - frameHeaderLen
	if body > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[:frameHeaderLen], uint32(body))
	return out, nil
}

// DecodeMessage parses one standalone frame produced by EncodeMessage. Any
// malformed, truncated, or oversized input returns an error — never a panic,
// and never an allocation beyond MaxFrameSize (the fuzz target's contract).
// Trailing bytes after the frame are a protocol error.
func DecodeMessage(data []byte) (Message, error) {
	var msg Message
	fr := NewFrameReader(bytes.NewReader(data))
	if err := fr.ReadMessage(&msg); err != nil {
		return Message{}, err
	}
	if fr.buf.off != len(fr.buf.data) {
		return Message{}, fmt.Errorf("wire: %d undecoded bytes inside frame", len(fr.buf.data)-fr.buf.off)
	}
	if rest, err := io.ReadAll(io.LimitReader(fr.r, 1)); err == nil && len(rest) > 0 {
		return Message{}, errors.New("wire: trailing bytes after frame")
	}
	return msg, nil
}
