// Frame codec for wire messages, speaking two negotiated wire versions on
// one stream:
//
//   - Version 2 (binary, the default): the hand-rolled zero-allocation codec
//     of binary.go — 'G' 'C' magic, version and type bytes, and a little-
//     endian length, followed by an explicit per-field binary body. This is
//     the hot path: payload relay, beacons, NACKs, and digests all ride it,
//     and coalesced container frames let one TCP write carry several small
//     control messages.
//
//   - Version 1 (gob, legacy): a 4-byte big-endian length prefix followed by
//     the gob encoding of one Message — the PR 5 codec, kept for one release
//     so mixed-version clusters can upgrade node by node.
//
// FrameReader needs no version switch: it sniffs each frame's leading bytes.
// A binary frame starts with 'G' (0x47); a gob frame starts with its length
// prefix, whose first byte is always 0x00 because MaxFrameSize (4 MiB) is
// far below 2^24. Either way the frame length is validated against
// MaxFrameSize BEFORE any allocation and the body is fully read before the
// decoder sees it, so a truncated, malformed, or hostile frame errors out
// cheaply and deterministically (FuzzDecodeMessage holds both codecs to
// that).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds one encoded frame body (4 MiB). Payloads are
// application-bounded well below this; anything larger is a protocol error,
// not a bigger buffer.
const MaxFrameSize = 4 << 20

// gobHeaderLen is the version-1 length prefix size in bytes.
const gobHeaderLen = 4

// Framing errors.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrameSize. The
	// stream is poisoned (the peer is not speaking this protocol); callers
	// should drop the connection.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrFrameEmpty reports a zero-length frame, which no Message encodes to.
	ErrFrameEmpty = errors.New("wire: empty frame")
)

// FrameWriter encodes messages onto a byte stream in one wire version. The
// binary writer reuses a per-writer scratch buffer, so steady-state writes
// allocate nothing; the gob writer keeps one persistent encoder (type
// descriptors are transmitted once per stream, not once per message). Not
// safe for concurrent use.
type FrameWriter struct {
	w       io.Writer
	version int

	// binary state: reusable frame scratch.
	scratch []byte

	// gob state: staging buffer + persistent encoder.
	buf bytes.Buffer
	enc *gob.Encoder
	hdr [gobHeaderLen]byte
}

// NewFrameWriter returns a writer framing messages onto w in the default
// (binary) wire version.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw, _ := NewFrameWriterVersion(w, DefaultVersion)
	return fw
}

// NewFrameWriterVersion returns a writer speaking the given wire version.
func NewFrameWriterVersion(w io.Writer, version int) (*FrameWriter, error) {
	switch version {
	case VersionBinary:
		return &FrameWriter{w: w, version: VersionBinary}, nil
	case VersionGob:
		fw := &FrameWriter{w: w, version: VersionGob}
		fw.enc = gob.NewEncoder(&fw.buf)
		return fw, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
}

// Version reports the wire version this writer speaks.
func (fw *FrameWriter) Version() int { return fw.version }

// WriteMessage frames and writes one message.
func (fw *FrameWriter) WriteMessage(msg *Message) error {
	if fw.version == VersionBinary {
		out, err := AppendMessage(fw.scratch[:0], msg)
		if err != nil {
			return err
		}
		fw.scratch = out[:0]
		_, err = fw.w.Write(out)
		return err
	}
	fw.buf.Reset()
	if err := fw.enc.Encode(msg); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if fw.buf.Len() > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(fw.hdr[:], uint32(fw.buf.Len()))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf.Bytes())
	return err
}

// WriteCoalesced writes one container frame carrying already-encoded
// sub-messages (a concatenation built with AppendSubMessage). Coalescing is
// a binary-version feature; a gob writer rejects it.
func (fw *FrameWriter) WriteCoalesced(subframes []byte) error {
	if fw.version != VersionBinary {
		return fmt.Errorf("%w: coalescing requires the binary wire version", ErrBadVersion)
	}
	out, err := AppendCoalesced(fw.scratch[:0], subframes)
	if err != nil {
		return err
	}
	fw.scratch = out[:0]
	_, err = fw.w.Write(out)
	return err
}

// FrameReader decodes frames from a byte stream, accepting both wire
// versions by sniffing each frame's leading bytes. Gob frames feed one
// persistent (lazily created) gob decoder; binary frames decode in place
// with per-reader string interning. Coalesced container frames are unpacked
// and their sub-messages returned one ReadMessage at a time. Not safe for
// concurrent use.
type FrameReader struct {
	r      io.Reader
	frame  []byte // reusable frame body buffer
	hdr    [binHeaderLen]byte
	intern internTable

	// pending holds sub-messages already unpacked from a coalesced frame.
	pending []Message

	// gob state, created on the first gob frame.
	gbuf frameBuffer
	dec  *gob.Decoder
}

// frameBuffer hands one validated frame at a time to the gob decoder. gob
// may retain read state between Decode calls only within a frame; Read past
// the frame end returns EOF-like behaviour via io.ErrUnexpectedEOF guards in
// ReadMessage.
type frameBuffer struct {
	data []byte
	off  int
}

func (b *frameBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *frameBuffer) set(data []byte) {
	b.data = data
	b.off = 0
}

// NewFrameReader returns a reader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadMessage reads and decodes the next message, unpacking coalesced
// container frames transparently. It returns io.EOF at a clean stream end,
// io.ErrUnexpectedEOF on a truncated frame, ErrFrameTooLarge on a hostile
// length, and a decode error when the frame bytes are not a valid Message.
// After any non-EOF error the stream position is undefined; drop the
// connection.
func (fr *FrameReader) ReadMessage(msg *Message) error {
	if len(fr.pending) > 0 {
		*msg = fr.pending[0]
		fr.pending = fr.pending[1:]
		return nil
	}
	if _, err := io.ReadFull(fr.r, fr.hdr[:gobHeaderLen]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	if fr.hdr[0] == magic0 && fr.hdr[1] == magic1 {
		return fr.readBinary(msg)
	}
	return fr.readGob(msg)
}

// readBinary finishes a binary frame whose first four header bytes are in
// fr.hdr.
func (fr *FrameReader) readBinary(msg *Message) error {
	if fr.hdr[2] != VersionBinary {
		return fmt.Errorf("%w: %d", ErrBadVersion, fr.hdr[2])
	}
	typ := fr.hdr[3]
	if _, err := io.ReadFull(fr.r, fr.hdr[4:binHeaderLen]); err != nil {
		return io.ErrUnexpectedEOF
	}
	size := binary.LittleEndian.Uint32(fr.hdr[4:binHeaderLen])
	if size == 0 {
		return ErrFrameEmpty
	}
	if size > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body, err := fr.readBody(int(size))
	if err != nil {
		return err
	}
	if typ == coalescedType {
		pending, err := decodeSubMessages(body, fr.pending[:0], &fr.intern)
		if err != nil {
			return err
		}
		fr.pending = pending
		*msg = fr.pending[0]
		fr.pending = fr.pending[1:]
		return nil
	}
	return decodeBody(body, typ, msg, &fr.intern)
}

// readGob finishes a version-1 frame whose length prefix is in fr.hdr.
func (fr *FrameReader) readGob(msg *Message) error {
	size := binary.BigEndian.Uint32(fr.hdr[:gobHeaderLen])
	if size == 0 {
		return ErrFrameEmpty
	}
	if size > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body, err := fr.readBody(int(size))
	if err != nil {
		return err
	}
	fr.gbuf.set(body)
	if fr.dec == nil {
		fr.dec = gob.NewDecoder(&fr.gbuf)
	}
	if err := fr.dec.Decode(msg); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// readBody reads a size-validated frame body, reusing the previous frame's
// backing array when it fits.
func (fr *FrameReader) readBody(size int) ([]byte, error) {
	if cap(fr.frame) < size {
		fr.frame = make([]byte, size)
	}
	body := fr.frame[:size]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return body, nil
}

// EncodeMessage renders one message as a standalone frame in the default
// (binary) wire version — the unit FuzzDecodeMessage round-trips and tests
// build corpora from.
func EncodeMessage(msg *Message) ([]byte, error) {
	return AppendMessage(nil, msg)
}

// EncodeMessageVersion renders one standalone frame in an explicit wire
// version. A standalone gob frame re-transmits type descriptors, so it is
// self-contained exactly like the frames a fresh connection starts with.
func EncodeMessageVersion(msg *Message, version int) ([]byte, error) {
	switch version {
	case VersionBinary:
		return AppendMessage(nil, msg)
	case VersionGob:
		var out bytes.Buffer
		out.Write(make([]byte, gobHeaderLen))
		if err := gob.NewEncoder(&out).Encode(msg); err != nil {
			return nil, fmt.Errorf("wire: encode: %w", err)
		}
		body := out.Len() - gobHeaderLen
		if body > MaxFrameSize {
			return nil, ErrFrameTooLarge
		}
		b := out.Bytes()
		binary.BigEndian.PutUint32(b[:gobHeaderLen], uint32(body))
		return b, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
}

// DecodeMessage parses one standalone single-message frame (either wire
// version). Any malformed, truncated, or oversized input returns an error —
// never a panic, and never an allocation beyond MaxFrameSize. Trailing bytes
// after the frame, or a multi-message coalesced frame, are a protocol error.
func DecodeMessage(data []byte) (Message, error) {
	msgs, err := DecodeFrames(data)
	if err != nil {
		return Message{}, err
	}
	if len(msgs) != 1 {
		return Message{}, fmt.Errorf("wire: %d messages in frame, want 1", len(msgs))
	}
	return msgs[0], nil
}

// DecodeFrames parses exactly one standalone frame of either wire version
// and returns the messages it carries: one for a plain frame, one or more
// for a coalesced container. Trailing bytes after the frame are a protocol
// error. Like DecodeMessage it never panics and never allocates beyond the
// frame cap (the fuzz target's contract).
func DecodeFrames(data []byte) ([]Message, error) {
	fr := NewFrameReader(bytes.NewReader(data))
	var msg Message
	if err := fr.ReadMessage(&msg); err != nil {
		return nil, err
	}
	msgs := append([]Message{msg}, fr.pending...)
	fr.pending = nil
	// The gob decoder may leave undecoded bytes inside a frame; the binary
	// decoder consumes bodies exactly. Either way, nothing may follow.
	if fr.gbuf.off != len(fr.gbuf.data) {
		return nil, fmt.Errorf("wire: %d undecoded bytes inside frame", len(fr.gbuf.data)-fr.gbuf.off)
	}
	if rest, err := io.ReadAll(io.LimitReader(fr.r, 1)); err == nil && len(rest) > 0 {
		return nil, errors.New("wire: trailing bytes after frame")
	}
	return msgs, nil
}
