package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func ev(i int) Event {
	return Event{Node: "n", Kind: KindRecv, Seq: uint64(i)}
}

func seqs(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, e := range evs {
		out[i] = e.Seq
	}
	return out
}

func TestRingKeepsNewestAtCapacity(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(ev(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := seqs(r.Snapshot())
	want := []uint64{7, 8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot seqs = %v, want %v (oldest first)", got, want)
		}
	}
}

func TestRingPartialFillIsOrdered(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 3; i++ {
		r.Record(ev(i))
	}
	got := seqs(r.Snapshot())
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Snapshot seqs = %v, want [1 2 3]", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(1))
	r.Record(ev(2))
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity clamps to 1)", r.Len())
	}
	if got := seqs(r.Snapshot()); got[0] != 2 {
		t.Fatalf("kept seq %d, want the newest (2)", got[0])
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(ev(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want full capacity 64", r.Len())
	}
}

func TestTracerEventsLimit(t *testing.T) {
	tr := New(16, nil)
	for i := 1; i <= 10; i++ {
		tr.Record(ev(i))
	}
	if got := tr.Events(3); len(got) != 3 || got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("Events(3) seqs = %v, want the newest three [8 9 10]", seqs(got))
	}
	if got := tr.Events(0); len(got) != 10 {
		t.Fatalf("Events(0) returned %d events, want all 10", len(got))
	}
	if got := tr.Events(100); len(got) != 10 {
		t.Fatalf("Events(100) returned %d events, want all 10", len(got))
	}
}

func TestTracerForwardsToSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(2, NewNDJSON(&buf))
	for i := 1; i <= 5; i++ {
		tr.Record(ev(i))
	}
	// The ring keeps only the newest two, but the sink saw everything.
	if tr.Len() != 2 {
		t.Fatalf("ring Len = %d, want 2", tr.Len())
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
	}
	if lines != 5 {
		t.Fatalf("sink received %d lines, want 5", lines)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	in := Event{
		Time:     time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		Node:     "127.0.0.1:7001",
		Kind:     KindDeliver,
		Msg:      "payload",
		Group:    "demo",
		TraceID:  42,
		Seq:      7,
		Source:   "127.0.0.1:7002",
		Peer:     "127.0.0.1:7003",
		Hop:      3,
		QueueUS:  10,
		HandleUS: 20,
		AgeUS:    1234,
	}
	s.Record(in)
	if s.Errors() != 0 {
		t.Fatalf("Errors = %d, want 0", s.Errors())
	}
	var out Event
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal NDJSON line: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestNDJSONOmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	NewNDJSON(&buf).Record(Event{Node: "n", Kind: KindRecv})
	line := buf.String()
	for _, field := range []string{"trace", "seq", "src", "peer", "hop", "n", "queue_us", "handle_us", "send_us", "wire_us", "age_us"} {
		if bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf("%q:", field))) {
			t.Errorf("zero field %s serialized in %s", field, line)
		}
	}
}

func TestFileSinkFsyncAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(8, sink)
	tr.Record(Event{Node: "a", Kind: KindPublish, TraceID: 1})
	tr.Record(Event{Node: "a", Kind: KindAlert, Msg: "slo-latency", Value: 9.5, Threshold: 5})
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Idempotent: a second close (node Close called twice) is a no-op.
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("trace file holds %d lines, want 2: %s", len(lines), data)
	}
	var alert Event
	if err := json.Unmarshal(lines[1], &alert); err != nil {
		t.Fatal(err)
	}
	if alert.Kind != KindAlert || alert.Value != 9.5 || alert.Threshold != 5 {
		t.Fatalf("alert event did not round-trip: %+v", alert)
	}
	if tr.SinkErrors() != 0 {
		t.Fatalf("SinkErrors = %d on the clean path", tr.SinkErrors())
	}
	// The ring outlives the sink: introspection still works after Close.
	if tr.Len() != 2 {
		t.Fatalf("ring lost events after Close: %d", tr.Len())
	}
}

func TestFileSinkCountsWritesAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Record(Event{Node: "a", Kind: KindSend})
	sink.Record(Event{Node: "a", Kind: KindSend})
	if got := sink.Errors(); got != 2 {
		t.Fatalf("Errors = %d after 2 dropped records, want 2", got)
	}
}

func TestTracerCloseWithoutSink(t *testing.T) {
	var tr *Tracer
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer close: %v", err)
	}
	if tr.SinkErrors() != 0 {
		t.Fatal("nil tracer reports sink errors")
	}
	tr = New(4, nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("sinkless close: %v", err)
	}
}
