// Package trace is the message-tracing half of the observability layer: it
// defines the structured events the live runtime (internal/node) and the
// offline experiments record as a message travels the overlay, a bounded
// ring buffer to hold them, and pluggable sinks (in-memory for tests and
// simulations, NDJSON for the daemon). Every event carries enough identity
// (trace ID, group, source, sequence) that one publish can be reconstructed
// hop by hop across the tree — including its NACK recovery paths — purely
// from the events the nodes collected.
//
// Tracing is opt-in and bounded: a node without a Tracer pays a single nil
// check on the hot path, and a Tracer never holds more than its ring
// capacity of events.
package trace

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind string

// Event kinds. A payload's life is publish → (send → recv)* → deliver, with
// nack / nack-fwd / retransmit splicing in recovery hops.
const (
	// KindPublish marks the origin of a payload at its publisher.
	KindPublish Kind = "publish"
	// KindSend is one outbound copy on one overlay link (publish fan-out or
	// relay forwarding). Peer names the destination.
	KindSend Kind = "send"
	// KindRecv is a message ingested by a node's handler. Peer names the
	// previous hop.
	KindRecv Kind = "recv"
	// KindDeliver is a payload handed to the application.
	KindDeliver Kind = "deliver"
	// KindNack is a retransmission request originated by a receiver for its
	// own sequence gaps; KindNackFwd is a NACK escalated upstream after a
	// local cache miss.
	KindNack    Kind = "nack"
	KindNackFwd Kind = "nack-fwd"
	// KindRetransmit is a payload re-sent from a retransmission buffer in
	// answer to a NACK.
	KindRetransmit Kind = "retransmit"
	// KindRelay is used by the offline simulator for one modeled relay hop
	// (queue + handle + wire in one event).
	KindRelay Kind = "relay"
	// KindAlert is a structured SLO alert from the telemetry plane
	// (internal/telemetry): a rule crossed its threshold (or recovered).
	// Msg names the rule, Peer the subject node, Value/Threshold the
	// measurement against the bound.
	KindAlert Kind = "alert"
)

// Event is one structured observation. Identity fields (TraceID, Group,
// Source, Seq) tie events of the same logical message together across nodes;
// (Group, Source, Seq) identifies a payload end to end even when a hop could
// not preserve the trace ID. Durations are microseconds so NDJSON stays
// compact and arithmetic-friendly.
type Event struct {
	// Time is when the event was recorded (the handler start for recv
	// events). The offline simulator uses a synthetic clock.
	Time time.Time `json:"t"`
	// Node is the address of the node that recorded the event.
	Node string `json:"node"`
	Kind Kind   `json:"kind"`
	// Msg is the wire message type name ("payload", "advertise", ...).
	Msg   string `json:"msg,omitempty"`
	Group string `json:"group,omitempty"`
	// TraceID correlates the hops of one protocol action (0 when the
	// originator had tracing disabled).
	TraceID uint64 `json:"trace,omitempty"`
	// Seq is the payload's per-(group, source) sequence number.
	Seq uint64 `json:"seq,omitempty"`
	// Source is the payload's original publisher.
	Source string `json:"src,omitempty"`
	// Peer is the remote end of the link: the previous hop on recv events,
	// the destination on send/nack/retransmit events.
	Peer string `json:"peer,omitempty"`
	// Hop counts overlay links travelled from the originator to this node.
	Hop int `json:"hop,omitempty"`
	// N is a batch size (missing sequences in one NACK message).
	N int `json:"n,omitempty"`
	// QueueUS is time spent queued before this node's handler saw the
	// message. Live, it is measured from the previous hop's hand-off to the
	// transport, so it folds in wire time the node cannot separate; the
	// in-memory fabric has (near-)zero wire latency, so there it reads as
	// pure queueing. The offline simulator models it as serialization delay
	// at the upstream relay.
	QueueUS int64 `json:"queue_us,omitempty"`
	// HandleUS is the handler's execution time for this message.
	HandleUS int64 `json:"handle_us,omitempty"`
	// SendUS is the time spent handing the forwarded copies to the transport.
	SendUS int64 `json:"send_us,omitempty"`
	// WireUS is modeled link propagation (offline simulator only; live nodes
	// cannot separate it from QueueUS).
	WireUS int64 `json:"wire_us,omitempty"`
	// AgeUS is the time since the payload's origin timestamp — the
	// cumulative publish→here latency.
	AgeUS int64 `json:"age_us,omitempty"`
	// Value and Threshold carry an SLO alert's measured value and the bound
	// it crossed (KindAlert events only).
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// Sink receives recorded events. Implementations must be safe for
// concurrent Record calls.
type Sink interface {
	Record(Event)
}

// Ring is a bounded, concurrency-safe event buffer: the newest `capacity`
// events survive, older ones are overwritten. It is the in-memory sink used
// by tests, the simulator, and the node's own introspection endpoint.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the buffered events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len counts the currently buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total counts every event ever recorded (including overwritten ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// NDJSON is a sink writing one JSON document per event, newline-delimited —
// the daemon's trace file format. Writes are serialized; encoding errors are
// counted, not returned (tracing must never fail the data path).
type NDJSON struct {
	mu     sync.Mutex
	enc    *json.Encoder
	errors uint64
}

// NewNDJSON returns a sink writing NDJSON to w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{enc: json.NewEncoder(w)}
}

// Record writes one event as a JSON line.
func (s *NDJSON) Record(ev Event) {
	s.mu.Lock()
	if err := s.enc.Encode(ev); err != nil {
		s.errors++
	}
	s.mu.Unlock()
}

// Errors counts encode failures so far.
func (s *NDJSON) Errors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}

// FileSink streams events as NDJSON to a file and — unlike a bare NDJSON
// over an os.File — owns the descriptor: Close fsyncs and closes it, so a
// clean node shutdown leaves a durable, complete trace file. Write and sync
// failures are counted (never returned on the record path; tracing must not
// fail the data plane) and surfaced through Errors for the node's Stats.
type FileSink struct {
	mu     sync.Mutex
	f      *os.File
	enc    *json.Encoder
	errors uint64
	closed bool
}

// OpenFileSink opens (appending, creating if needed) the NDJSON trace file.
func OpenFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewFileSink(f), nil
}

// NewFileSink wraps an already-open file. The sink takes ownership: Close
// closes it.
func NewFileSink(f *os.File) *FileSink {
	return &FileSink{f: f, enc: json.NewEncoder(f)}
}

// Record writes one event as a JSON line. Records after Close are dropped
// and counted as errors.
func (s *FileSink) Record(ev Event) {
	s.mu.Lock()
	if s.closed || s.enc.Encode(ev) != nil {
		s.errors++
	}
	s.mu.Unlock()
}

// Errors counts failed or dropped writes so far.
func (s *FileSink) Errors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}

// Close fsyncs and closes the file. Idempotent; a sync or close failure is
// returned and counted.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if serr := s.f.Sync(); serr != nil {
		err = serr
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		s.errors++
	}
	return err
}

// errorCounter is implemented by sinks that count failed writes (NDJSON,
// FileSink).
type errorCounter interface{ Errors() uint64 }

// Tracer is what a node holds: a bounded ring (always, so the introspection
// endpoint can serve recent events) plus an optional secondary sink (the
// NDJSON file). A nil *Tracer means tracing is disabled.
type Tracer struct {
	ring *Ring
	sink Sink
}

// New returns a tracer with a ring of the given capacity and an optional
// extra sink (nil for ring-only tracing).
func New(capacity int, sink Sink) *Tracer {
	return &Tracer{ring: NewRing(capacity), sink: sink}
}

// Record stores one event in the ring and forwards it to the extra sink.
func (t *Tracer) Record(ev Event) {
	t.ring.Record(ev)
	if t.sink != nil {
		t.sink.Record(ev)
	}
}

// Events returns the ring's buffered events, oldest first. The optional
// limit keeps only the newest n (n <= 0 returns everything buffered).
func (t *Tracer) Events(n int) []Event {
	evs := t.ring.Snapshot()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len counts the buffered events; Total counts everything ever recorded.
func (t *Tracer) Len() int      { return t.ring.Len() }
func (t *Tracer) Total() uint64 { return t.ring.Total() }

// SinkErrors counts the extra sink's failed writes (0 without a sink, or
// with one that doesn't count).
func (t *Tracer) SinkErrors() uint64 {
	if t == nil || t.sink == nil {
		return 0
	}
	if ec, ok := t.sink.(errorCounter); ok {
		return ec.Errors()
	}
	return 0
}

// Close flushes and closes the extra sink when it is closable (the file
// sink fsyncs). Safe on a nil tracer, idempotent, and the ring stays
// readable afterwards.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	if c, ok := t.sink.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
